"""gem5-style simulation substrate: clock, atomic CPU, profiler, engine.

``System`` and ``Engine`` are exported lazily (PEP 562): they sit above
the kernel layer, and importing them eagerly here would close an import
cycle (sim.ops -> sim.__init__ -> system -> kernel -> sim.ops).
"""

from repro.sim.cpu import AtomicCPU
from repro.sim.devices import AudioDevice, DeviceSet, FramebufferDevice, StorageDevice
from repro.sim.memprofiler import MemProfiler
from repro.sim.ops import YIELD, Block, ExecBlock, Sleep, SleepUntil, Yield, merge_data
from repro.sim.ticks import (
    Clock,
    insts_to_ticks,
    micros,
    millis,
    seconds,
    to_seconds,
)

__all__ = [
    "AtomicCPU",
    "AudioDevice",
    "Block",
    "Clock",
    "DeviceSet",
    "Engine",
    "ExecBlock",
    "FramebufferDevice",
    "MemProfiler",
    "Sleep",
    "SleepUntil",
    "StorageDevice",
    "System",
    "YIELD",
    "Yield",
    "insts_to_ticks",
    "merge_data",
    "micros",
    "millis",
    "seconds",
    "to_seconds",
]

_LAZY = {"System": "repro.sim.system", "Engine": "repro.sim.engine"}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value
    return value
