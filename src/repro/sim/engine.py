"""The simulation engine: dispatches ops from scheduled tasks.

This is gem5's event loop in miniature.  One atomic CPU pulls ops from the
task the scheduler picked; blocking/sleeping ops park the task; the timer
queue drives periodic threads; when nothing is runnable the idle task
(``swapper``) accrues a trickle of kernel references — which is why the
paper's SPEC bars show a sliver of ``swapper``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.kernel.sched import Scheduler, TimerQueue
from repro.kernel.task import Task, TaskState
from repro.sim.ops import Block, ExecBlock, Sleep, SleepUntil, Yield

if TYPE_CHECKING:
    from repro.sim.system import System

#: Idle-loop intensity: kernel instructions per tick while idling.
IDLE_INSTS_PER_TICK = 0.0005


class Engine:
    """Runs the system forward in time."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.clock = system.clock
        self.cpu = system.cpu
        self.profiler = system.profiler
        self.sched: Scheduler = system.kernel.sched
        self.timers: TimerQueue = system.kernel.timers
        self.ops_dispatched = 0
        self.idle_ticks = 0

    # ------------------------------------------------------------------

    def run_until(self, deadline: int, max_ops: int | None = None) -> None:
        """Advance simulated time to *deadline* (absolute tick)."""
        ops_budget = max_ops if max_ops is not None else float("inf")
        while self.clock.now < deadline and ops_budget > 0:
            self.timers.fire_due(self.clock.now)
            task = self.sched.pick()
            if task is None:
                self._run_idle(deadline)
                continue
            ops_budget -= self._run_task(task, deadline)
        self.timers.fire_due(self.clock.now)

    def run_for(self, duration: int, max_ops: int | None = None) -> None:
        """Advance simulated time by *duration* ticks."""
        self.run_until(self.clock.now + duration, max_ops)

    # ------------------------------------------------------------------

    def _run_task(self, task: Task, deadline: int) -> int:
        """Run *task* until it blocks, yields, exhausts its quantum, or the
        run deadline passes.  Returns the number of ops dispatched."""
        quantum_end = self.clock.now + self.sched.quantum
        dispatched = 0
        while True:
            behavior = task.behavior
            if behavior is None:
                self.system.kernel.reap_task(task)
                return dispatched
            try:
                op = next(behavior)
            except StopIteration:
                self.system.kernel.reap_task(task)
                return dispatched
            dispatched += 1
            self.ops_dispatched += 1

            if type(op) is ExecBlock:
                ticks = self.cpu.execute(task, op)
                self.clock.advance(ticks)
                self.timers.fire_due(self.clock.now)
                if self.clock.now >= quantum_end or self.clock.now >= deadline:
                    self.sched.requeue(task)
                    return dispatched
            elif type(op) is Block:
                task.state = TaskState.BLOCKED
                task.waitq = op.waitq
                op.waitq.add(task)
                return dispatched
            elif type(op) is Sleep:
                self._sleep_until(task, self.clock.now + op.duration)
                return dispatched
            elif type(op) is SleepUntil:
                if op.deadline <= self.clock.now:
                    continue
                self._sleep_until(task, op.deadline)
                return dispatched
            elif type(op) is Yield:
                self.sched.requeue(task)
                return dispatched
            else:
                raise SchedulerError(f"unknown op {op!r} from {task!r}")

    def _sleep_until(self, task: Task, deadline: int) -> None:
        task.state = TaskState.SLEEPING
        self.timers.add(deadline, task)

    def _run_idle(self, deadline: int) -> None:
        """Nothing runnable: idle until the next timer (or the deadline)."""
        next_timer = self.timers.next_deadline()
        if next_timer is None or next_timer > deadline:
            target = deadline
        else:
            target = max(next_timer, self.clock.now)
        span = target - self.clock.now
        if span > 0:
            idle = self.system.kernel.idle_task
            insts = int(span * IDLE_INSTS_PER_TICK)
            if idle is not None and insts > 0:
                self.profiler.charge_idle(idle.process.comm, idle.name, insts)
            self.idle_ticks += span
            self.clock.advance_to(target)
        self.timers.fire_due(self.clock.now)
