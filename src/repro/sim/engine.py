"""The simulation engine: an N-core SMP event loop dispatching ops.

This is gem5's event loop in miniature, generalised to symmetric
multiprocessing.  Each CPU pulls ops from the task its per-CPU runqueue
picked; blocking/sleeping ops park the task; the timer queue drives
periodic threads; a CPU with nothing runnable idles (the ``swapper``
task accrues a trickle of kernel references — which is why the paper's
SPEC bars show a sliver of ``swapper``).

Determinism rules (the invariant the whole backend/cache fleet relies
on — a run is a pure function of ``(bench_id, RunConfig)``):

* CPUs interleave in global tick order: the engine always acts on the
  CPU whose next action is earliest, breaking timestamp ties in favour
  of CPUs mid-dispatch (so wakeup side effects land before an idle CPU
  re-picks) and then by lowest CPU id.
* Wake placement, idle pulls and periodic balancing are deterministic
  functions of runqueue state (see :class:`~repro.kernel.sched.Scheduler`).
* Timeslices, CPU-time accounting and the between-ops preemption poll
  come from the scheduler policy: the round-robin default grants full
  quanta and never preempts (byte-identical to the pre-CFS engine),
  while a ``cpu_profile`` machine's :class:`~repro.kernel.sched.CfsScheduler`
  grants slice remainders and preempts on vruntime lead.
* With ``cpus=1`` the loop replays the original single-CPU engine
  op-for-op, so single-core results stay byte-identical.

The inner loop is the dominant cost of every run, so it binds hot
attributes to locals and probes the timer heap inline instead of paying
a method call per retired block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.faults.runtime import active_injector
from repro.kernel.task import TaskState
from repro.sim.ops import Block, ExecBlock, Sleep, SleepUntil, Yield

if TYPE_CHECKING:
    from repro.kernel.task import Task
    from repro.sim.cpu import AtomicCPU
    from repro.sim.system import System

#: Idle-loop intensity: kernel instructions per tick while idling.
IDLE_INSTS_PER_TICK = 0.0005


class _CpuSlot:
    """One CPU's execution state inside the event loop."""

    __slots__ = ("cpu", "index", "task", "quantum_end", "next_at")

    def __init__(self, cpu: "AtomicCPU", index: int) -> None:
        self.cpu = cpu
        self.index = index
        #: The RUNNING task bound to this CPU (None while picking/idling).
        self.task: "Task | None" = None
        self.quantum_end = 0
        #: Absolute tick of this CPU's next action: the end of the block
        #: it is retiring, the instant it should re-pick, or (while idle)
        #: the next event that could hand it work.
        self.next_at = 0


class Engine:
    """Runs the system forward in time across every CPU."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.clock = system.clock
        self.cpus = system.cpus
        self.profiler = system.profiler
        self.sched = system.kernel.sched
        self.timers = system.kernel.timers
        self.ops_dispatched = 0
        #: Idle ticks summed across CPUs (single-CPU: the old counter).
        self.idle_ticks = 0
        #: Idle ticks per CPU, indexed by CPU id.
        self.cpu_idle_ticks = [0] * len(system.cpus)
        #: Measure of the union of busy intervals across CPUs: ticks
        #: during which at least one CPU was retiring a block.  Paired
        #: with per-CPU busy ticks this yields the TLP-style concurrency
        #: metric (average CPUs busy while any CPU is busy).
        self.any_busy_ticks = 0
        self._busy_until = 0
        self._slots = [_CpuSlot(cpu, i) for i, cpu in enumerate(system.cpus)]

    # ------------------------------------------------------------------

    def run_until(self, deadline: int, max_ops: int | None = None) -> None:
        """Advance simulated time to *deadline* (absolute tick).

        *max_ops* bounds dispatched ops; the budget is only checked when
        a CPU is about to pick a new task, so a running task always
        finishes its scheduling segment (quantum/block/yield), exactly
        as the single-CPU engine behaved.
        """
        clock = self.clock
        timers = self.timers
        timer_heap = timers._heap  # hot-loop: probe before paying fire_due
        sched = self.sched
        account = sched.account
        timeslice = sched.timeslice
        # The preemption poll only exists under the CFS policy; binding
        # None keeps the round-robin hot loop at a single comparison.
        preempt = sched.should_preempt if sched.preemptive else None
        kernel = self.system.kernel
        slots = self._slots
        smp = len(slots) > 1
        # Fault injection: an armed injector exposes the tick of its
        # earliest pending event; no plan means one None comparison.
        injector = active_injector()
        fault_due = injector.next_due if injector is not None else None
        # Budget stays integer-only in the hot loop: None means unbounded
        # (the old float("inf") mixed float comparisons into every pass).
        budget = max_ops

        now = clock.now
        if now >= deadline:
            timers.fire_due(now)
            return
        for slot in slots:
            slot.task = None
            slot.next_at = now
        next_balance = now + sched.balance_period

        while True:
            # Select the next acting CPU: earliest next_at; ties prefer a
            # CPU mid-dispatch over one about to pick (False sorts first),
            # then lowest id via scan order.
            best = slots[0]
            if smp:
                best_key = (best.next_at, best.task is None)
                for slot in slots:
                    key = (slot.next_at, slot.task is None)
                    if key < best_key:
                        best, best_key = slot, key
            t = best.next_at
            if t >= deadline:
                break
            if t > now:
                now = clock.advance_to(t)
                if smp and now >= next_balance:
                    sched.balance()
                    next_balance = now + sched.balance_period
            if timer_heap and timer_heap[0][0] <= now:
                timers.fire_due(now)
            if fault_due is not None and now >= fault_due:
                injector.fire_due(now, slots)
                fault_due = injector.next_due

            task = best.task
            if task is not None and (
                now >= best.quantum_end
                or (preempt is not None and preempt(task, best.index))
            ):
                sched.requeue(task, best.index)
                best.task = task = None
            if task is None:
                if budget is not None and budget <= 0:
                    break
                task = sched.pick(best.index)
                if task is None:
                    self._park(best, now, deadline)
                    continue
                best.task = task
                best.quantum_end = now + timeslice(task)

            # Dispatch exactly one op; the loop re-selects between ops so
            # CPUs interleave at block granularity.
            behavior = task.behavior
            if behavior is None:
                factory = task.behavior_factory
                if factory is None:
                    kernel.reap_task(task)
                    best.task = None
                    best.next_at = now
                    continue
                # First dispatch: materialise the deferred behaviour.
                task.behavior = behavior = factory(task)
                task.behavior_factory = None
            try:
                op = next(behavior)
            except StopIteration:
                kernel.reap_task(task)
                best.task = None
                best.next_at = now
                continue
            self.ops_dispatched += 1
            if budget is not None:
                budget -= 1

            kind = type(op)
            if kind is ExecBlock:
                ticks = best.cpu.execute(task, op)
                account(task, best.index, ticks)
                end = now + ticks
                if end > self._busy_until:
                    start = now if now > self._busy_until else self._busy_until
                    self.any_busy_ticks += end - start
                    self._busy_until = end
                best.next_at = end
            elif kind is Block:
                task.state = TaskState.BLOCKED
                task.waitq = op.waitq
                op.waitq.add(task)
                best.task = None
                best.next_at = now
            elif kind is Sleep:
                self._sleep_until(task, now + op.duration)
                best.task = None
                best.next_at = now
            elif kind is SleepUntil:
                if op.deadline > now:
                    self._sleep_until(task, op.deadline)
                    best.task = None
                best.next_at = now
            elif kind is Yield:
                sched.requeue(task, best.index)
                best.task = None
                best.next_at = now
            else:
                raise SchedulerError(f"unknown op {op!r} from {task!r}")

        # Wind down: blocks already charged run to completion, so the
        # clock lands on the latest in-flight block end (or the deadline
        # when the machine idled there); due timers fire; still-running
        # tasks unbind back to their runqueues in CPU-id order.  On a
        # budget stop only in-flight blocks move the clock — idle CPUs
        # may have accrued their final parked span past it, a smear only
        # reachable with cpus > 1 and an ops budget.
        end = clock.now
        deadline_reached = True
        for slot in slots:
            if slot.task is not None and slot.next_at > end:
                end = slot.next_at
            if slot.next_at < deadline:
                deadline_reached = False
        if deadline_reached and deadline > end:
            end = deadline
        clock.advance_to(end)
        timers.fire_due(clock.now)
        for slot in slots:
            if slot.task is not None:
                sched.requeue(slot.task, slot.index)
                slot.task = None

    def run_for(self, duration: int, max_ops: int | None = None) -> None:
        """Advance simulated time by *duration* ticks."""
        self.run_until(self.clock.now + duration, max_ops)

    # ------------------------------------------------------------------

    def _sleep_until(self, task: "Task", deadline: int) -> None:
        task.state = TaskState.SLEEPING
        self.timers.add(deadline, task)

    def _park(self, slot: _CpuSlot, now: int, deadline: int) -> None:
        """Nothing runnable for this CPU: idle until the next event that
        could hand it work — a timer firing, or any busy CPU's next
        action (ops are where wakeups, spawns and queue placement
        happen).  The target is strictly in the future (timers due now
        already fired; zero-length blocks keep their CPU ahead in the
        tie-break), so a parked CPU always makes progress."""
        target = deadline
        next_timer = self.timers.next_deadline()
        if next_timer is not None and now < next_timer < target:
            target = next_timer
        for other in self._slots:
            if other.task is not None and now < other.next_at < target:
                target = other.next_at
        span = target - now
        if span > 0:
            idle = self.system.kernel.idle_task
            insts = int(span * IDLE_INSTS_PER_TICK)
            # A slow (LITTLE) core retires proportionally fewer idle
            # instructions in the same span; the symmetric default
            # divides by 1 and stays bit-exact.
            tpi = slot.cpu.ticks_per_inst
            if tpi > 1:
                insts //= tpi
            if idle is not None and insts > 0:
                self.profiler.charge_idle(
                    idle.process.comm, idle.name, insts, slot.index
                )
            self.idle_ticks += span
            self.cpu_idle_ticks[slot.index] += span
        slot.next_at = target
