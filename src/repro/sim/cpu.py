"""Atomic CPU model.

Mirrors gem5's ``AtomicSimpleCPU`` as used by the paper: no caches, no
pipeline — every instruction retires in a fixed integer number of ticks
and every reference is counted and attributed immediately.  The default
core retires one instruction per tick (1 GHz in the tick base); a
big.LITTLE ``cpu_profile`` hands LITTLE cores a larger ``ticks_per_inst``
so the same block occupies them longer.  The CPU is intentionally thin;
the interesting state lives in the profiler and the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.calibration import CpuSpec
from repro.sim.memprofiler import MemProfiler
from repro.sim.ticks import TICKS_PER_INST, Clock

if TYPE_CHECKING:
    from repro.kernel.task import Task
    from repro.sim.ops import ExecBlock


class AtomicCPU:
    """Functional CPU: charges blocks to the clock and the profiler."""

    __slots__ = (
        "clock",
        "profiler",
        "cpu_id",
        "spec",
        "ticks_per_inst",
        "capacity",
        "insts_retired",
        "blocks_executed",
        "busy_ticks",
    )

    def __init__(
        self,
        clock: Clock,
        profiler: MemProfiler,
        cpu_id: int = 0,
        spec: CpuSpec | None = None,
    ) -> None:
        self.clock = clock
        self.profiler = profiler
        self.cpu_id = cpu_id
        #: Speed/capacity of this core (symmetric default when omitted).
        self.spec = spec if spec is not None else CpuSpec(
            ticks_per_inst=TICKS_PER_INST
        )
        self.ticks_per_inst = self.spec.ticks_per_inst
        self.capacity = self.spec.capacity
        self.insts_retired = 0
        self.blocks_executed = 0
        #: Ticks this CPU spent retiring blocks (the SMP busy-time axis).
        self.busy_ticks = 0

    def execute(self, task: "Task", block: "ExecBlock") -> int:
        """Retire *block* on behalf of *task*; returns elapsed ticks."""
        self.profiler.charge(task, block, self.cpu_id)
        self.insts_retired += block.insts
        self.blocks_executed += 1
        ticks = block.insts * self.ticks_per_inst
        task.cpu_ticks += ticks
        self.busy_ticks += ticks
        return ticks

    def throttle(self, factor: int) -> int:
        """Slow this core by *factor* (a fault-plan thermal cap).

        Returns the previous ticks-per-instruction so the caller can
        :meth:`unthrottle` back to it; stacking is the caller's problem.
        """
        prev = self.ticks_per_inst
        self.ticks_per_inst = prev * factor
        return prev

    def unthrottle(self, saved: int) -> None:
        """Restore the speed :meth:`throttle` saved."""
        self.ticks_per_inst = saved

    def __repr__(self) -> str:
        return (
            f"AtomicCPU(id={self.cpu_id}, insts={self.insts_retired}, "
            f"blocks={self.blocks_executed})"
        )
