"""Atomic CPU model.

Mirrors gem5's ``AtomicSimpleCPU`` as used by the paper: no caches, no
pipeline — every instruction retires in one cycle and every reference is
counted and attributed immediately.  The CPU is intentionally thin; the
interesting state lives in the profiler and the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.memprofiler import MemProfiler
from repro.sim.ticks import Clock, insts_to_ticks

if TYPE_CHECKING:
    from repro.kernel.task import Task
    from repro.sim.ops import ExecBlock


class AtomicCPU:
    """Functional CPU: charges blocks to the clock and the profiler."""

    def __init__(self, clock: Clock, profiler: MemProfiler, cpu_id: int = 0) -> None:
        self.clock = clock
        self.profiler = profiler
        self.cpu_id = cpu_id
        self.insts_retired = 0
        self.blocks_executed = 0
        #: Ticks this CPU spent retiring blocks (the SMP busy-time axis).
        self.busy_ticks = 0

    def execute(self, task: "Task", block: "ExecBlock") -> int:
        """Retire *block* on behalf of *task*; returns elapsed ticks."""
        self.profiler.charge(task, block, self.cpu_id)
        self.insts_retired += block.insts
        self.blocks_executed += 1
        ticks = insts_to_ticks(block.insts)
        task.cpu_ticks += ticks
        self.busy_ticks += ticks
        return ticks

    def __repr__(self) -> str:
        return (
            f"AtomicCPU(id={self.cpu_id}, insts={self.insts_retired}, "
            f"blocks={self.blocks_executed})"
        )
