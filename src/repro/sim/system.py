"""Top-level simulated system: clock + CPU + profiler + kernel + devices.

A :class:`System` is one simulated phone (or, for SPEC, the same phone
running a console workload).  Construction is cheap; the Android stack is
layered on by :func:`repro.android.boot.boot_android`.
"""

from __future__ import annotations

import random

from repro.calibration import CpuSpec, parse_cpu_profile
from repro.kernel.kthreads import spawn_standard_kthreads
from repro.kernel.pagecache import Filesystem
from repro.kernel.proc import Kernel
from repro.sim.cpu import AtomicCPU
from repro.sim.devices import DeviceSet
from repro.sim.engine import Engine
from repro.sim.memprofiler import MemProfiler
from repro.sim.ticks import Clock


class System:
    """One simulated machine (``cpus`` cores sharing one memory system).

    *cpu_profile* selects a big.LITTLE-style asymmetric machine (e.g.
    ``"2+2"``: two full-speed big cores then two half-speed LITTLE
    cores) and switches the kernel onto the CFS vruntime scheduler.
    ``None`` — the default — is the symmetric reproducibility path:
    uniform cores under the round-robin policy, byte-identical to the
    pre-profile engine.
    """

    def __init__(
        self,
        seed: int = 1234,
        devices: DeviceSet | None = None,
        cpus: int = 1,
        cpu_profile: str | None = None,
    ) -> None:
        if cpus < 1:
            raise ValueError(f"system needs cpus >= 1, got {cpus}")
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = Clock()
        self.profiler = MemProfiler()
        self.cpu_profile = cpu_profile
        #: Per-CPU speed/capacity specs, or None on the symmetric default.
        self.cpu_specs: tuple[CpuSpec, ...] | None = None
        if cpu_profile is not None:
            specs = parse_cpu_profile(cpu_profile)
            if len(specs) != cpus:
                raise ValueError(
                    f"cpu profile {cpu_profile!r} describes {len(specs)} "
                    f"cores but cpus={cpus}"
                )
            self.cpu_specs = specs
            self.cpus = [
                AtomicCPU(self.clock, self.profiler, cpu_id=i, spec=spec)
                for i, spec in enumerate(specs)
            ]
        else:
            self.cpus = [
                AtomicCPU(self.clock, self.profiler, cpu_id=i)
                for i in range(cpus)
            ]
        #: The boot CPU — also *the* CPU on a single-core machine.
        self.cpu = self.cpus[0]
        self.devices = devices if devices is not None else DeviceSet()
        self.kernel = Kernel(self)
        self.engine = Engine(self)
        self.fs = Filesystem(self.kernel, self.devices.storage)
        self._booted = False

    def big_cpu(self, index: int = 0) -> int | None:
        """The *index*-th big core's CPU id on an asymmetric machine.

        ``None`` on the symmetric default and on degenerate profiles
        (all-big or all-LITTLE), where there is no meaningful big/LITTLE
        split to pin service threads against — so callers can pass the
        result straight to ``spawn_thread(affinity=...)`` without
        changing default-path placement.
        """
        if self.cpu_specs is None:
            return None
        bigs = [i for i, spec in enumerate(self.cpu_specs) if spec.is_big]
        if not bigs or len(bigs) == len(self.cpu_specs):
            return None
        return bigs[index % len(bigs)]

    @property
    def cpu_count(self) -> int:
        """Number of simulated cores."""
        return len(self.cpus)

    def boot_kernel(self) -> None:
        """Bring up the idle task and the standard kernel threads."""
        if self._booted:
            return
        spawn_standard_kthreads(self.kernel, self.devices.storage)
        self._booted = True

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    def run_for(self, duration: int, max_ops: int | None = None) -> None:
        """Advance the simulation by *duration* ticks."""
        self.engine.run_for(duration, max_ops)

    def run_until(self, deadline: int, max_ops: int | None = None) -> None:
        """Advance the simulation to the absolute tick *deadline*."""
        self.engine.run_until(deadline, max_ops)

    def __repr__(self) -> str:
        return (
            f"System(now={self.clock.now}, procs={self.kernel.process_count()}, "
            f"refs={self.profiler.total_refs})"
        )
