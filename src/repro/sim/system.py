"""Top-level simulated system: clock + CPU + profiler + kernel + devices.

A :class:`System` is one simulated phone (or, for SPEC, the same phone
running a console workload).  Construction is cheap; the Android stack is
layered on by :func:`repro.android.boot.boot_android`.
"""

from __future__ import annotations

import random

from repro.kernel.kthreads import spawn_standard_kthreads
from repro.kernel.pagecache import Filesystem
from repro.kernel.proc import Kernel
from repro.sim.cpu import AtomicCPU
from repro.sim.devices import DeviceSet
from repro.sim.engine import Engine
from repro.sim.memprofiler import MemProfiler
from repro.sim.ticks import Clock


class System:
    """One simulated machine (``cpus`` cores sharing one memory system)."""

    def __init__(
        self,
        seed: int = 1234,
        devices: DeviceSet | None = None,
        cpus: int = 1,
    ) -> None:
        if cpus < 1:
            raise ValueError(f"system needs cpus >= 1, got {cpus}")
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = Clock()
        self.profiler = MemProfiler()
        self.cpus = [AtomicCPU(self.clock, self.profiler, cpu_id=i) for i in range(cpus)]
        #: The boot CPU — also *the* CPU on a single-core machine.
        self.cpu = self.cpus[0]
        self.devices = devices if devices is not None else DeviceSet()
        self.kernel = Kernel(self)
        self.engine = Engine(self)
        self.fs = Filesystem(self.kernel, self.devices.storage)
        self._booted = False

    @property
    def cpu_count(self) -> int:
        """Number of simulated cores."""
        return len(self.cpus)

    def boot_kernel(self) -> None:
        """Bring up the idle task and the standard kernel threads."""
        if self._booted:
            return
        spawn_standard_kthreads(self.kernel, self.devices.storage)
        self._booted = True

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    def run_for(self, duration: int, max_ops: int | None = None) -> None:
        """Advance the simulation by *duration* ticks."""
        self.engine.run_for(duration, max_ops)

    def run_until(self, deadline: int, max_ops: int | None = None) -> None:
        """Advance the simulation to the absolute tick *deadline*."""
        self.engine.run_until(deadline, max_ops)

    def __repr__(self) -> str:
        return (
            f"System(now={self.clock.now}, procs={self.kernel.process_count()}, "
            f"refs={self.profiler.total_refs})"
        )
