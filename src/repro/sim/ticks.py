"""Simulation time base.

The simulator counts time in integer *ticks*, one tick per simulated
nanosecond, mirroring gem5's convention.  The atomic CPU model retires one
instruction per cycle at :data:`CPU_FREQ_HZ`, so instruction counts convert
directly to ticks.
"""

from __future__ import annotations

TICKS_PER_SECOND: int = 1_000_000_000
TICKS_PER_MS: int = TICKS_PER_SECOND // 1_000
TICKS_PER_US: int = TICKS_PER_SECOND // 1_000_000

CPU_FREQ_HZ: int = 1_000_000_000
TICKS_PER_INST: int = TICKS_PER_SECOND // CPU_FREQ_HZ


def seconds(n: float) -> int:
    """Convert seconds to ticks."""
    return int(n * TICKS_PER_SECOND)


def millis(n: float) -> int:
    """Convert milliseconds to ticks."""
    return int(n * TICKS_PER_MS)


def micros(n: float) -> int:
    """Convert microseconds to ticks."""
    return int(n * TICKS_PER_US)


def to_seconds(ticks: int) -> float:
    """Convert ticks back to (float) seconds."""
    return ticks / TICKS_PER_SECOND


def insts_to_ticks(insts: int) -> int:
    """Ticks consumed by retiring *insts* instructions on the atomic CPU."""
    return insts * TICKS_PER_INST


class Clock:
    """Monotonic simulation clock.

    The clock only moves forward; the engine advances it as ops retire and
    when the system idles until the next timer deadline.
    """

    __slots__ = ("now",)

    def __init__(self, start: int = 0) -> None:
        self.now = start

    def advance(self, delta: int) -> int:
        """Move the clock forward by *delta* ticks and return the new time."""
        if delta < 0:
            raise ValueError(f"clock cannot run backwards (delta={delta})")
        self.now += delta
        return self.now

    def advance_to(self, when: int) -> int:
        """Move the clock forward to absolute tick *when* (no-op if past)."""
        if when > self.now:
            self.now = when
        return self.now

    def __repr__(self) -> str:
        return f"Clock(now={self.now})"
