"""Platform devices: framebuffer, block storage, audio sink.

Devices are deliberately simple state machines; their role in the
reproduction is to give the right *threads* work to do — ``ata_sff/0``
copies completed I/O, SurfaceFlinger writes the fb0 mapping, AudioFlinger
drains into the audio sink — so that references land where the paper
observed them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.ticks import micros

if TYPE_CHECKING:
    from repro.kernel.waitq import WaitQueue


@dataclass
class FramebufferDevice:
    """The display panel behind ``/dev/graphics/fb0``."""

    width: int = 800
    height: int = 480
    bytes_per_pixel: int = 2
    frames_posted: int = 0

    @property
    def pixels(self) -> int:
        """Pixels per full frame."""
        return self.width * self.height

    @property
    def frame_bytes(self) -> int:
        """Bytes per full frame."""
        return self.pixels * self.bytes_per_pixel

    def post(self) -> None:
        """Record a page flip."""
        self.frames_posted += 1


@dataclass
class IORequest:
    """One block-device transfer awaiting service by ``ata_sff/0``."""

    nbytes: int
    completion_q: "WaitQueue"
    submitted_at: int
    serviced: bool = False


class StorageDevice:
    """Single-queue block device (eMMC/SD-class latencies).

    Submitters enqueue requests and block on a per-request completion
    queue; the ``ata_sff/0`` kernel thread services the queue, charging the
    copy work to kernel space, then wakes the submitter.
    """

    #: Fixed per-request latency before data is ready.
    LATENCY_TICKS = micros(150)
    #: Device streaming bandwidth in bytes per tick (~20 MB/s).
    BYTES_PER_TICK = 0.02

    def __init__(self) -> None:
        self.queue: deque[IORequest] = deque()
        self.requests_submitted = 0
        self.bytes_transferred = 0
        #: The ata_sff/0 thread parks on this queue between requests.
        self.worker_q: "WaitQueue | None" = None

    def submit(self, request: IORequest) -> None:
        """Queue a transfer and kick the service thread."""
        self.queue.append(request)
        self.requests_submitted += 1
        if self.worker_q is not None:
            self.worker_q.wake_all()

    def transfer_ticks(self, nbytes: int) -> int:
        """Ticks the device needs for an *nbytes* transfer."""
        return self.LATENCY_TICKS + int(nbytes / self.BYTES_PER_TICK)

    def pop(self) -> IORequest | None:
        """Next request to service, or None when idle."""
        return self.queue.popleft() if self.queue else None


@dataclass
class AudioDevice:
    """PCM sink behind AudioFlinger's mixer thread."""

    sample_rate: int = 44_100
    channels: int = 2
    bytes_per_sample: int = 2
    bytes_written: int = 0
    buffers_mixed: int = field(default=0)

    @property
    def bytes_per_second(self) -> int:
        """PCM byte rate of the output stream."""
        return self.sample_rate * self.channels * self.bytes_per_sample

    def write(self, nbytes: int) -> None:
        """Account a mixed buffer reaching the hardware."""
        self.bytes_written += nbytes
        self.buffers_mixed += 1


@dataclass
class DeviceSet:
    """All platform devices of one simulated system."""

    framebuffer: FramebufferDevice = field(default_factory=FramebufferDevice)
    storage: StorageDevice = field(default_factory=StorageDevice)
    audio: AudioDevice = field(default_factory=AudioDevice)
