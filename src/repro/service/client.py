"""Client side of the result service: HTTP access plus the two-tier cache.

:class:`CacheClient` is a thin stdlib-``urllib`` wrapper over the wire
protocol (conditional GET, publish PUT, stats).  :class:`RemoteCacheBackend`
stacks it behind an optional local
:class:`~repro.core.results.ResultCache` and duck-types the cache
contract :func:`~repro.core.runner.execute_with_cache` consumes
(``get``/``put``/``flush_stats``), so ``--cache-url`` drops into the
suite/sweep/fleet runners without touching orchestration code:

- lookup: local hit short-circuits (content-addressed keys cannot go
  stale, so local entries never *need* revalidation); a local miss tries
  the remote ``GET`` and writes a hit through to the local tier;
- compute: fresh results go to the local tier and are published to the
  service with ``PUT``, so every other worker's next miss becomes a hit.

With ``revalidate=True`` a local hit is additionally checked against the
service once per key per session — but conditionally: the entry's
canonical body bytes are the same bytes the service stores (both sides
serialise with ``json.dumps`` defaults), so its ETag is derivable
locally as the server's quoted sha256 and rides as ``If-None-Match``.
A ``304`` confirms the write-through for free (no body transfer,
counted in ``CacheClient.revalidated``); a ``200`` means the server
holds a different body, which is adopted and written through; a ``404``
means the server lost the entry, which is healed with a re-publish.

An unreachable service degrades, never fails: one warning, then the
remote tier is skipped for the rest of the process and the run proceeds
on local cache + simulation alone.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import warnings
from typing import TYPE_CHECKING
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.core.results import ResultCache, RunResult
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.core.runner import RunConfig

#: Per-request timeout: a hung service must degrade like a down one.
DEFAULT_TIMEOUT = 10.0

#: Environment handshake deduplicating the unreachable-service warning
#: across a process pool (the ``REPRO_SNAPSHOTS`` pattern): the first
#: process to find a URL down exports it here, and every worker spawned
#: afterwards inherits the flag and skips its own copy of the warning.
ENV_WARNED = "REPRO_CACHE_DOWN_WARNED"


class CacheClient:
    """Speaks the result-service wire protocol for one base URL."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ConfigError(
                f"cache url must start with http:// or https://, "
                f"got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Conditional GETs answered 304: revalidations served without
        #: a body transfer.
        self.revalidated = 0

    def _url(self, key: str) -> str:
        return f"{self.base_url}/result/{key}"

    def get_entry(
        self, key: str, etag: "str | None" = None
    ) -> "tuple[int, bytes | None, str | None]":
        """``(status, body, etag)`` for one entry.

        *etag* rides as ``If-None-Match``; 304 and 404 come back as
        statuses with ``body=None`` rather than exceptions — they are
        protocol outcomes, not failures.
        """
        request = Request(self._url(key))
        if etag is not None:
            request.add_header("If-None-Match", etag)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return (
                    response.status,
                    response.read(),
                    response.headers.get("ETag"),
                )
        except HTTPError as exc:
            with contextlib.closing(exc):
                if exc.code in (304, 404):
                    if exc.code == 304:
                        self.revalidated += 1
                    return exc.code, None, exc.headers.get("ETag")
                raise

    def put_entry(self, key: str, body: bytes) -> None:
        """Publish one entry body (raises on any non-2xx outcome)."""
        request = Request(
            self._url(key),
            data=body,
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request, timeout=self.timeout) as response:
            response.read()

    def stats(self) -> dict:
        """The service's ``/stats`` counters."""
        with urlopen(f"{self.base_url}/stats", timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))


class RemoteCacheBackend:
    """Two-tier result cache: optional local directory, remote service.

    Drop-in for a :class:`~repro.core.results.ResultCache` wherever the
    runners take one.  ``remote_hits``/``remote_misses`` count only
    lookups that actually reached the service (local hits never do).
    """

    def __init__(
        self,
        client: CacheClient,
        local: "ResultCache | None" = None,
        revalidate: bool = False,
    ) -> None:
        self.client = client
        self.local = local
        self.revalidate = revalidate
        self.remote_hits = 0
        self.remote_misses = 0
        self._down = False
        #: Keys whose local entry was confirmed against (or reconciled
        #: with) the service this session; each is revalidated once.
        self._validated: set[str] = set()

    # ------------------------------------------------------------------
    # The cache contract execute_with_cache consumes

    def get(self, bench_id: str, cfg: "RunConfig") -> "RunResult | None":
        if self.local is not None:
            hit = self.local.get(bench_id, cfg)
            if hit is not None:
                if self.revalidate:
                    return self._revalidated(bench_id, cfg, hit)
                return hit
        body = self._remote_get(ResultCache.key(bench_id, cfg))
        if body is None:
            self.remote_misses += 1
            return None
        try:
            result = RunResult.from_json_dict(json.loads(body.decode("utf-8")))
        except (ValueError, KeyError, TypeError, AttributeError):
            # A corrupt remote payload is a miss, exactly like a corrupt
            # local entry — recompute and heal it with the PUT.
            self.remote_misses += 1
            warnings.warn(
                f"discarding corrupt remote cache entry for {bench_id}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.remote_hits += 1
        if self.local is not None:
            self.local.put(bench_id, cfg, result)
        return result

    def put(self, bench_id: str, cfg: "RunConfig", result: RunResult) -> None:
        if self.local is not None:
            self.local.put(bench_id, cfg, result)
        body = json.dumps(result.to_json_dict()).encode("utf-8")
        self._remote_put(ResultCache.key(bench_id, cfg), body)

    def _revalidated(
        self, bench_id: str, cfg: "RunConfig", hit: RunResult
    ) -> RunResult:
        """Check one local hit against the service, conditionally.

        The ETag is computed from the local entry's canonical bytes —
        the server's ETag scheme is the quoted sha256 of the stored
        body, and publish/write-through keep both sides' bytes equal —
        so a matching entry costs a 304, not a body transfer.  Any
        outcome (including a down service) still serves a result; each
        key is revalidated at most once per session.
        """
        key = ResultCache.key(bench_id, cfg)
        if self._down or key in self._validated:
            return hit
        body = json.dumps(hit.to_json_dict()).encode("utf-8")
        etag = '"' + hashlib.sha256(body).hexdigest() + '"'
        try:
            status, remote_body, _etag = self.client.get_entry(key, etag=etag)
        except OSError as exc:
            self._mark_down(exc)
            return hit
        self._validated.add(key)
        if status == 404:
            # The service lost (or never had) the entry: heal it.
            self._remote_put(key, body)
            return hit
        if status == 200 and remote_body is not None:
            # The server holds a different body.  Adopt it: the service
            # is the shared source of truth, and the next reader of the
            # local tier should agree with it.
            try:
                result = RunResult.from_json_dict(
                    json.loads(remote_body.decode("utf-8"))
                )
            except (ValueError, KeyError, TypeError, AttributeError):
                warnings.warn(
                    f"ignoring corrupt remote entry while revalidating "
                    f"{bench_id}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return hit
            if self.local is not None:
                self.local.put(bench_id, cfg, result)
            return result
        return hit

    def flush_stats(self) -> None:
        if self.local is not None:
            self.local.flush_stats()

    # ------------------------------------------------------------------

    def _remote_get(self, key: str) -> "bytes | None":
        if self._down:
            return None
        try:
            status, body, _etag = self.client.get_entry(key)
        except OSError as exc:
            self._mark_down(exc)
            return None
        return body if status == 200 else None

    def _remote_put(self, key: str, body: bytes) -> None:
        if self._down:
            return
        try:
            self.client.put_entry(key, body)
        except OSError as exc:
            self._mark_down(exc)

    def _mark_down(self, exc: Exception) -> None:
        """Warn once, then stop trying: computing locally is always a
        correct fallback, and one warning per run beats one per unit.

        "Once" means once per *run*, not once per process: ``--jobs N``
        spawns N pool workers that each rebuild this backend, and N
        copies of the same warning bury the signal.  The first process
        to find the URL down exports it via :data:`ENV_WARNED`; workers
        spawned after that inherit the flag and go quiet (they still
        mark the tier down for themselves).
        """
        self._down = True
        if os.environ.get(ENV_WARNED) == self.client.base_url:
            return
        os.environ[ENV_WARNED] = self.client.base_url
        warnings.warn(
            f"result service at {self.client.base_url} is unreachable "
            f"({exc}); continuing without the remote tier",
            RuntimeWarning,
            stacklevel=4,
        )
