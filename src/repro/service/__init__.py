"""Networked result tier: an HTTP cache service over ResultCache entries.

The local :class:`~repro.core.results.ResultCache` is a directory; this
package makes it a shared result plane for multi-host fleets.  The
server side (:mod:`repro.service.server`) is a stdlib-only daemon
serving entries by content hash through an in-memory LRU hot tier; the
client side (:mod:`repro.service.client`) is a two-tier cache —
optional local directory front, remote service behind — that plugs into
:func:`~repro.core.runner.execute_with_cache` unchanged, so every
existing backend becomes fleet-ready without touching execution code.
"""

from repro.service.client import CacheClient, RemoteCacheBackend
from repro.service.server import (
    DEFAULT_HOT_BYTES,
    DEFAULT_MAX_AGE,
    HotTier,
    ResultServer,
    ResultService,
    ResultServiceHandler,
    make_server,
)

__all__ = [
    "CacheClient",
    "DEFAULT_HOT_BYTES",
    "DEFAULT_MAX_AGE",
    "HotTier",
    "RemoteCacheBackend",
    "ResultServer",
    "ResultService",
    "ResultServiceHandler",
    "make_server",
]
