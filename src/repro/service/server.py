"""The result service daemon: cache entries over HTTP, memory-fronted.

A long-lived, stdlib-only HTTP server over one
:class:`~repro.core.results.ResultCache` directory, modeled on the
memcache-fronted tiered-lookup shape (memory tier first, backing store
behind, cache-control headers on the way out):

- ``GET /result/<key>`` serves one content-addressed entry, with a
  strong ``ETag`` and ``Cache-Control: max-age`` headers; a matching
  ``If-None-Match`` gets ``304 Not Modified`` with no body.
- ``PUT /result/<key>`` publishes a completed run: the body is
  validated as JSON, written atomically to the backing store
  (write-through), and installed in the hot tier.  Concurrent writers
  of one key serialise — last writer wins, a reader never sees a torn
  entry.
- ``GET /stats`` reports hit/miss/eviction counters as JSON.

Every ``GET`` goes through a :class:`HotTier` — an in-memory LRU map
bounded by a byte budget — so repeated-key traffic (the common shape:
many workers sweeping the same grid) is served without touching disk.
Keys are content hashes of ``(bench, config, version)``, so entries are
immutable: a stale read is impossible, only a miss.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

#: Default hot-tier byte budget (comfortably thousands of run entries).
DEFAULT_HOT_BYTES = 64 * 1024 * 1024

#: Default ``Cache-Control: max-age`` — entries are content-addressed
#: and therefore immutable, so a long client-side lifetime is safe.
DEFAULT_MAX_AGE = 86400

#: An entry key: the 64-hex-digit content hash ResultCache uses.
_KEY = re.compile(r"[0-9a-f]{64}")

_RESULT_PREFIX = "/result/"


class HotTier:
    """In-memory LRU front over the backing store, bounded by bytes.

    A plain ordered map from entry key to ``(body, etag)``: lookups
    promote to most-recently-used, inserts evict from the LRU end until
    the byte budget holds.  A body larger than the whole budget is never
    admitted (it would evict everything and still not fit).  Not
    thread-safe on its own — :class:`ResultService` owns the lock.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError(f"hot-tier budget must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.current_bytes = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, tuple[bytes, str]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> "list[str]":
        """Resident keys, LRU-first (the eviction order)."""
        return list(self._entries)

    def get(self, key: str) -> "tuple[bytes, str] | None":
        """The resident ``(body, etag)`` for *key*, promoted to MRU."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, body: bytes, etag: str) -> None:
        """Install (or refresh) one entry, evicting LRU-first to fit."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= len(old[0])
        if len(body) > self.max_bytes:
            return
        self._entries[key] = (body, etag)
        self.current_bytes += len(body)
        while self.current_bytes > self.max_bytes:
            _, (evicted, _) = self._entries.popitem(last=False)
            self.current_bytes -= len(evicted)
            self.evictions += 1


class ResultService:
    """The tiered lookup itself: hot tier over a cache directory.

    Pure mechanism, no HTTP: :meth:`fetch` and :meth:`publish` are what
    the request handler (and in-process tests) call.  The backing store
    is laid out exactly like a :class:`~repro.core.results.ResultCache`
    directory — ``<key>.json`` files — so a service can be pointed at an
    existing cache and vice versa.
    """

    def __init__(
        self,
        root: str,
        hot_bytes: int = DEFAULT_HOT_BYTES,
        max_age: int = DEFAULT_MAX_AGE,
    ) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.max_age = max_age
        self.hot = HotTier(hot_bytes)
        self.hot_hits = 0
        self.store_hits = 0
        self.misses = 0
        self.puts = 0
        #: Guards the hot tier and every counter.
        self._lock = threading.Lock()
        #: Serialises backing-store writes: concurrent PUTs of one key
        #: would otherwise share a tmp filename and tear each other.
        self._store_lock = threading.Lock()

    # ------------------------------------------------------------------

    @staticmethod
    def etag_of(body: bytes) -> str:
        """The strong ETag of one entry body (quoted content hash)."""
        return '"' + hashlib.sha256(body).hexdigest() + '"'

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def fetch(self, key: str) -> "tuple[bytes, str] | None":
        """``(body, etag)`` for one entry, or ``None`` on a miss.

        Hot-tier first; a store read installs the entry in the hot tier
        on the way out, so the next request for it stays in memory.
        """
        with self._lock:
            entry = self.hot.get(key)
            if entry is not None:
                self.hot_hits += 1
                return entry
        try:
            with open(self._path(key), "rb") as fh:
                body = fh.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        etag = self.etag_of(body)
        with self._lock:
            self.store_hits += 1
            self.hot.put(key, body, etag)
        return body, etag

    def publish(self, key: str, body: bytes) -> None:
        """Store one entry: validate, write through atomically, warm.

        Raises :class:`ValueError` on a body that is not JSON — the
        store must never hold an entry a reader would discard as
        corrupt.  The write is tmp-then-rename under the store lock
        (last writer wins); the tmp is unlinked if the write fails.
        """
        json.loads(body.decode("utf-8"))
        path = self._path(key)
        etag = self.etag_of(body)
        with self._store_lock:
            tmp = path + f".tmp.{os.getpid()}"
            try:
                with open(tmp, "wb") as fh:
                    fh.write(body)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
            os.replace(tmp, path)
        with self._lock:
            self.puts += 1
            self.hot.put(key, body, etag)

    def stats_payload(self) -> dict:
        """The ``/stats`` JSON body (one consistent snapshot)."""
        with self._lock:
            return {
                "hot_hits": self.hot_hits,
                "store_hits": self.store_hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.hot.evictions,
                "hot_entries": len(self.hot),
                "hot_bytes": self.hot.current_bytes,
                "hot_budget": self.hot.max_bytes,
                "max_age": self.max_age,
            }


class ResultServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/result/<key>`` and ``/stats`` onto the service."""

    server_version = "agave-result-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ResultService:
        return self.server.service  # type: ignore[attr-defined]

    # Quiet by default: a load test would otherwise drown stdout in
    # per-request log lines.  ``serve --verbose`` turns them back on.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        path = urlsplit(self.path).path
        if path == "/stats":
            self._send_json(200, self.service.stats_payload())
            return
        key = self._result_key(path)
        if key is None:
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        found = self.service.fetch(key)
        if found is None:
            self._send_json(404, {"error": f"no entry for {key}"})
            return
        body, etag = found
        if self._etag_matches(etag):
            self.send_response(304)
            self._send_cache_headers(etag)
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._send_cache_headers(etag)
        self.end_headers()
        self.wfile.write(body)

    def do_PUT(self) -> None:  # noqa: N802
        key = self._result_key(urlsplit(self.path).path)
        if key is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_json(411, {"error": "Content-Length required"})
            return
        body = self.rfile.read(int(length))
        try:
            self.service.publish(key, body)
        except ValueError:
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        self.send_response(204)
        self.end_headers()

    # ------------------------------------------------------------------

    @staticmethod
    def _result_key(path: str) -> "str | None":
        """The entry key named by *path*, or ``None`` if it names none.

        Only exact 64-hex keys resolve: anything else 404s rather than
        letting a crafted path escape the store directory.
        """
        if not path.startswith(_RESULT_PREFIX):
            return None
        key = path[len(_RESULT_PREFIX):]
        return key if _KEY.fullmatch(key) else None

    def _etag_matches(self, etag: str) -> bool:
        header = self.headers.get("If-None-Match")
        if header is None:
            return False
        for candidate in header.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:]
            if candidate in ("*", etag):
                return True
        return False

    def _send_cache_headers(self, etag: str) -> None:
        self.send_header("ETag", etag)
        self.send_header("Cache-Control", f"max-age={self.service.max_age}")

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ResultServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ResultService`."""

    daemon_threads = True

    def __init__(
        self,
        address: "tuple[str, int]",
        service: ResultService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ResultServiceHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    hot_bytes: int = DEFAULT_HOT_BYTES,
    max_age: int = DEFAULT_MAX_AGE,
    verbose: bool = False,
) -> ResultServer:
    """A ready-to-run server over *root* (``port=0`` picks a free port).

    The caller drives it: ``serve_forever()`` inline (the CLI daemon) or
    on a thread (tests, the load-generator benchmark), then
    ``shutdown()`` + ``server_close()``.
    """
    service = ResultService(root, hot_bytes=hot_bytes, max_age=max_age)
    return ResultServer((host, port), service, verbose=verbose)
