"""Workload calibration constants.

Every size-dependent instruction/reference cost in the stack reads from the
module-level :data:`CAL` singleton, so the whole model can be re-scaled (or
ablated) from one place.  Defaults were fitted so the suite-wide shapes
match the paper's figures (see EXPERIMENTS.md); none of the *reported*
percentages are hard-coded anywhere — they emerge from these per-unit
costs and the workload structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Calibration:
    """Per-unit costs of the simulated stack (instructions unless noted)."""

    # Graphics -----------------------------------------------------------
    #: SurfaceFlinger software-composition cost per pixel per layer.
    sf_insts_per_pixel: float = 5.0
    #: SurfaceFlinger data references per composited pixel (read + write).
    sf_refs_per_pixel: float = 0.9
    #: Per-frame cost of flipping an overlay (video) layer: no pixel work.
    overlay_flip_insts: int = 2_400
    #: Skia software rasterisation cost per pixel (blitters in mspace).
    blit_insts_per_pixel: float = 1.6
    #: SkDraw outer-loop cost per pixel (libskia.so proper).
    skdraw_insts_per_pixel: float = 0.55
    #: Data references per rasterised pixel.
    blit_refs_per_pixel: float = 0.5
    #: Skia text shaping cost per glyph (libskia text).
    text_insts_per_glyph: int = 260
    #: Image decode cost per output pixel (libskia).
    decode_insts_per_pixel: float = 2.2

    # Dalvik ---------------------------------------------------------------
    #: Interpreter expansion factor: native insts per bytecode op.
    interp_insts_per_bytecode: float = 14.0
    #: JIT-compiled expansion factor (traces run near-native).
    jit_insts_per_bytecode: float = 2.4
    #: Method invocations before a trace is considered hot.
    jit_hot_threshold: int = 40
    #: Compile cost per bytecode op of the hot method.
    jit_compile_insts_per_bytecode: float = 1_500.0
    #: Code-cache bytes before Gingerbread's flush-everything policy hits
    #: (real: 1.5MB cache, full flush, recompile from scratch).
    jit_cache_flush_bytes: int = 320 * 1024
    #: GC cost per KB of live dalvik heap per collection (full-heap
    #: stop-the-world mark/sweep on Gingerbread).
    gc_insts_per_kb: float = 2_600.0
    #: Fraction of the heap surviving a collection.
    gc_survivor_ratio: float = 0.55
    #: Allocation bytes triggering a GC cycle.
    gc_trigger_bytes: int = 768 * 1024

    # Media ----------------------------------------------------------------
    #: MP3 decode cost per 26.1ms frame (stagefright / vlc).
    mp3_insts_per_frame: int = 230_000
    #: AAC decode cost per 21.3ms frame.
    aac_insts_per_frame: int = 260_000
    #: H.264 decode cost per pixel of output frame.
    avc_insts_per_pixel: float = 4.2
    #: Container demux cost per extracted sample.
    demux_insts_per_sample: int = 9_000
    #: AudioFlinger mixing cost per PCM output sample-frame.
    mix_insts_per_frame: float = 14.0
    #: AudioTrack client thread cost per PCM byte moved: SRC_44->48
    #: polyphase resampling + volume/effects per sample.
    audiotrack_insts_per_byte: float = 45.0

    # Misc workload ----------------------------------------------------------
    #: sqlite row-step cost.
    sql_step_insts: int = 1_700
    #: XML parse cost per KB of document.
    xml_insts_per_kb: int = 5_200
    #: zlib inflate cost per KB of compressed input.
    inflate_insts_per_kb: int = 8_000
    #: dexopt verification+optimisation cost per KB of dex.
    dexopt_insts_per_kb: int = 9_000

    # Idle / housekeeping ------------------------------------------------
    #: Kernel idle-loop intensity already lives in repro.sim.engine.

    def scaled(self, factor: float) -> "Calibration":
        """A copy with all graphics/media costs scaled by *factor*."""
        return replace(
            self,
            sf_insts_per_pixel=self.sf_insts_per_pixel * factor,
            blit_insts_per_pixel=self.blit_insts_per_pixel * factor,
            avc_insts_per_pixel=self.avc_insts_per_pixel * factor,
        )


#: Mutable singleton consulted by the stack.  The runner swaps it for the
#: duration of ablation runs via :func:`use_calibration`.
CAL = Calibration()


class use_calibration:
    """Context manager temporarily replacing the global calibration."""

    def __init__(self, cal: Calibration) -> None:
        self._new = cal
        self._old: Calibration | None = None

    def __enter__(self) -> Calibration:
        global CAL
        self._old = CAL
        CAL = self._new
        return CAL

    def __exit__(self, *exc_info: object) -> None:
        global CAL
        if self._old is not None:
            CAL = self._old


def current() -> Calibration:
    """The calibration in effect (read at call time, not import time)."""
    return CAL
