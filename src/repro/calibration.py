"""Workload calibration constants.

Every size-dependent instruction/reference cost in the stack reads from the
module-level :data:`CAL` singleton, so the whole model can be re-scaled (or
ablated) from one place.  Defaults were fitted so the suite-wide shapes
match the paper's figures (see EXPERIMENTS.md); none of the *reported*
percentages are hard-coded anywhere — they emerge from these per-unit
costs and the workload structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class Calibration:
    """Per-unit costs of the simulated stack (instructions unless noted)."""

    # Graphics -----------------------------------------------------------
    #: SurfaceFlinger software-composition cost per pixel per layer.
    sf_insts_per_pixel: float = 5.0
    #: SurfaceFlinger data references per composited pixel (read + write).
    sf_refs_per_pixel: float = 0.9
    #: Per-frame cost of flipping an overlay (video) layer: no pixel work.
    overlay_flip_insts: int = 2_400
    #: Skia software rasterisation cost per pixel (blitters in mspace).
    blit_insts_per_pixel: float = 1.6
    #: SkDraw outer-loop cost per pixel (libskia.so proper).
    skdraw_insts_per_pixel: float = 0.55
    #: Data references per rasterised pixel.
    blit_refs_per_pixel: float = 0.5
    #: Skia text shaping cost per glyph (libskia text).
    text_insts_per_glyph: int = 260
    #: Image decode cost per output pixel (libskia).
    decode_insts_per_pixel: float = 2.2

    # Dalvik ---------------------------------------------------------------
    #: Interpreter expansion factor: native insts per bytecode op.
    interp_insts_per_bytecode: float = 14.0
    #: JIT-compiled expansion factor (traces run near-native).
    jit_insts_per_bytecode: float = 2.4
    #: Method invocations before a trace is considered hot.
    jit_hot_threshold: int = 40
    #: Compile cost per bytecode op of the hot method.
    jit_compile_insts_per_bytecode: float = 1_500.0
    #: Code-cache bytes before Gingerbread's flush-everything policy hits
    #: (real: 1.5MB cache, full flush, recompile from scratch).
    jit_cache_flush_bytes: int = 320 * 1024
    #: GC cost per KB of live dalvik heap per collection (full-heap
    #: stop-the-world mark/sweep on Gingerbread).
    gc_insts_per_kb: float = 2_600.0
    #: Fraction of the heap surviving a collection.
    gc_survivor_ratio: float = 0.55
    #: Allocation bytes triggering a GC cycle.
    gc_trigger_bytes: int = 768 * 1024

    # Media ----------------------------------------------------------------
    #: MP3 decode cost per 26.1ms frame (stagefright / vlc).
    mp3_insts_per_frame: int = 230_000
    #: AAC decode cost per 21.3ms frame.
    aac_insts_per_frame: int = 260_000
    #: H.264 decode cost per pixel of output frame.
    avc_insts_per_pixel: float = 4.2
    #: Container demux cost per extracted sample.
    demux_insts_per_sample: int = 9_000
    #: AudioFlinger mixing cost per PCM output sample-frame.
    mix_insts_per_frame: float = 14.0
    #: AudioTrack client thread cost per PCM byte moved: SRC_44->48
    #: polyphase resampling + volume/effects per sample.
    audiotrack_insts_per_byte: float = 45.0

    # Misc workload ----------------------------------------------------------
    #: sqlite row-step cost.
    sql_step_insts: int = 1_700
    #: XML parse cost per KB of document.
    xml_insts_per_kb: int = 5_200
    #: zlib inflate cost per KB of compressed input.
    inflate_insts_per_kb: int = 8_000
    #: dexopt verification+optimisation cost per KB of dex.
    dexopt_insts_per_kb: int = 9_000

    # Idle / housekeeping ------------------------------------------------
    #: Kernel idle-loop intensity already lives in repro.sim.engine.

    def scaled(self, factor: float) -> "Calibration":
        """A copy with all graphics/media costs scaled by *factor*."""
        return replace(
            self,
            sf_insts_per_pixel=self.sf_insts_per_pixel * factor,
            blit_insts_per_pixel=self.blit_insts_per_pixel * factor,
            avc_insts_per_pixel=self.avc_insts_per_pixel * factor,
        )


#: Mutable singleton consulted by the stack.  The runner swaps it for the
#: duration of ablation runs via :func:`use_calibration`.
CAL = Calibration()


# ---------------------------------------------------------------------------
# Named calibration presets (device-class ablations)

#: Named device-class calibrations, selectable as the ``cal.preset``
#: sweep/fleet axis.  Each is a coherent bundle of per-unit costs rather
#: than a single-field override: ``lowend`` models a cheaper handset
#: (slower pixel pipeline, weaker interpreter, half the JIT code cache,
#: earlier GC pressure), ``highend`` a flagship (faster pixels, larger
#: code cache, later GC).  ``baseline`` is the fitted paper calibration.
CAL_PRESETS: dict[str, Calibration] = {
    "baseline": Calibration(),
    "lowend": replace(
        Calibration().scaled(1.4),
        interp_insts_per_bytecode=16.0,
        jit_cache_flush_bytes=160 * 1024,
        gc_trigger_bytes=512 * 1024,
    ),
    "highend": replace(
        Calibration().scaled(0.7),
        interp_insts_per_bytecode=12.0,
        jit_cache_flush_bytes=640 * 1024,
        gc_trigger_bytes=1024 * 1024,
    ),
}


def calibration_preset(name: str) -> Calibration:
    """Look up a named preset (``ConfigError`` on an unknown name)."""
    try:
        return CAL_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown calibration preset {name!r}; "
            f"known: {', '.join(CAL_PRESETS)}"
        ) from None


# ---------------------------------------------------------------------------
# CPU profiles (big.LITTLE-style asymmetric core speeds)


@dataclass(frozen=True)
class CpuSpec:
    """One simulated core's speed and scheduling capacity.

    *ticks_per_inst* is the integer cycle time of the atomic CPU (the
    symmetric default is 1 tick per instruction — 1 GHz in the tick
    base); *capacity* is the Linux-style relative capacity the
    capacity-aware scheduler weighs placement with (1024 = a big core).
    """

    ticks_per_inst: int = 1
    capacity: int = 1024

    @property
    def is_big(self) -> bool:
        """True for full-capacity (big-cluster) cores."""
        return self.capacity >= BIG_CAPACITY


#: Scheduling capacity of a big core (Linux's SCHED_CAPACITY_SCALE).
BIG_CAPACITY = 1024
#: A LITTLE core: half the clock of a big core, half the capacity —
#: the in-order/OoO gap of e.g. an A53/A57 pair, coarsely.
LITTLE_TICKS_PER_INST = 2
LITTLE_CAPACITY = 512

_BIG_SPEC = CpuSpec(ticks_per_inst=1, capacity=BIG_CAPACITY)
_LITTLE_SPEC = CpuSpec(
    ticks_per_inst=LITTLE_TICKS_PER_INST, capacity=LITTLE_CAPACITY
)


def parse_cpu_profile(profile: str) -> tuple[CpuSpec, ...]:
    """Expand a ``"B+L"`` big.LITTLE profile into per-CPU specs.

    ``"4+4"`` is four big cores followed by four LITTLE cores (big cores
    take the low CPU ids, matching the common vendor numbering); ``"2+2"``
    is the classic quad big.LITTLE half.  ``"0+4"`` (all LITTLE) and
    ``"4+0"`` (all big, i.e. symmetric speeds but scheduled by the CFS
    queue) are valid degenerate forms.
    """
    big_text, sep, little_text = profile.partition("+")
    if not sep:
        raise ConfigError(
            f"bad cpu profile {profile!r}: expected BIG+LITTLE core counts "
            f"(e.g. 4+4 or 2+2)"
        )
    try:
        big, little = int(big_text), int(little_text)
    except ValueError:
        raise ConfigError(
            f"bad cpu profile {profile!r}: core counts must be integers"
        ) from None
    if big < 0 or little < 0 or big + little < 1:
        raise ConfigError(
            f"bad cpu profile {profile!r}: needs at least one core"
        )
    return (_BIG_SPEC,) * big + (_LITTLE_SPEC,) * little


def profile_cpu_count(profile: str) -> int:
    """The number of cores a profile describes."""
    return len(parse_cpu_profile(profile))


class use_calibration:
    """Context manager temporarily replacing the global calibration."""

    def __init__(self, cal: Calibration) -> None:
        self._new = cal
        self._old: Calibration | None = None

    def __enter__(self) -> Calibration:
        global CAL
        self._old = CAL
        CAL = self._new
        return CAL

    def __exit__(self, *exc_info: object) -> None:
        global CAL
        if self._old is not None:
            CAL = self._old


def current() -> Calibration:
    """The calibration in effect (read at call time, not import time)."""
    return CAL
