"""system_server: the framework service host.

Forked from zygote, it hosts ActivityManager, WindowManager,
PackageManager and the smaller services on a Binder thread pool, runs the
SurfaceFlinger thread (Gingerbread placement), and keeps the
InputReader/InputDispatcher/watchdog threads ticking — the reason
``system_server`` ranks second in the paper's process figures even for
apps that barely touch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.android.binder import BinderHost, ServiceRegistry, Transaction
from repro.android.installer import Installer, InstallRequest
from repro.android.surfaceflinger import SurfaceFlinger
from repro.dalvik.method import MethodTable
from repro.dalvik.vm import DalvikContext
from repro.dalvik.zygote import Zygote
from repro.errors import ServiceError
from repro.kernel.syscalls import kernel_exec
from repro.libs.registry import SYSTEM_SERVER_LIBS, framework_veneer, mapped_object
from repro.sim.ops import Op, Sleep
from repro.sim.ticks import millis

if TYPE_CHECKING:
    from repro.kernel.task import Process, Task
    from repro.sim.system import System


@dataclass
class SystemServerHandle:
    """Handles into the running system_server."""

    proc: "Process"
    ctx: DalvikContext
    host: BinderHost
    sf: SurfaceFlinger
    methods: MethodTable
    installer: Installer | None = None
    activities_started: int = field(default=0)


def server_method_table(seed: int) -> MethodTable:
    """system_server's framework method catalog for one boot seed.

    Deterministic in *seed* (including the generator state the table
    keeps for runtime ``pick_batch`` draws), so the boot-snapshot seed
    delta can regenerate it instead of serialising it into the
    seed-independent level-1 template.
    """
    return MethodTable.generate_cached(
        seed=seed ^ 0x5E41, prefix="android.server", count=140, avg_bytecodes=360
    )


class _ServerMain:
    """ActivityManager's home thread loop.

    ``handle`` is attached after construction (the handle needs the
    forked process, which needs this behaviour first).  Module-level so
    a pre-run system_server pickles into a boot snapshot.
    """

    def __init__(self) -> None:
        self.handle: SystemServerHandle | None = None

    def __call__(self, task: "Task") -> Iterator[Op]:
        # ActivityManager's home thread: android.server.ServerThread.
        task.set_name("android.server.ServerThread")
        handle = self.handle
        assert handle is not None
        while True:
            yield Sleep(millis(500))
            # Battery stats, alarms, activity timeouts.
            for method in handle.methods.pick_batch(5):
                yield handle.ctx.interpret(method, reps=8, task=task)
            yield from framework_veneer(handle.proc, nlibs=5, insts_each=130)


def boot_system_server(
    system: "System", registry: ServiceRegistry, zygote: Zygote,
    jit_enabled: bool = True,
) -> SystemServerHandle:
    """Fork and populate system_server."""
    kernel = system.kernel
    methods = server_method_table(system.seed)
    main = _ServerMain()
    proc, ctx = zygote.fork_dalvik(
        "system_server",
        main,
        extra_libs=SYSTEM_SERVER_LIBS,
        jit_enabled=jit_enabled,
    )
    sf = SurfaceFlinger(system, proc)
    # Vendor BSPs pin the composition thread onto the big cluster (and
    # run it above nice 0); on a symmetric machine big_cpu() is None and
    # placement is untouched.
    kernel.spawn_thread(
        proc, "SurfaceFlinger", sf.thread_behavior,
        affinity=system.big_cpu(0), nice=-8,
    )
    host = BinderHost(kernel, proc, nthreads=8)
    handle = SystemServerHandle(proc, ctx, host, sf, methods)
    main.handle = handle

    services = _ServiceImpls(system, handle, zygote)
    registry.add("activity", host, services.handle_activity)
    registry.add("window", host, services.handle_window)
    registry.add("package", host, services.handle_package)
    for name in ("power", "alarm", "audio.policy", "sensorservice", "connectivity"):
        registry.add(name, host, services.make_small_service(name))

    _spawn_framework_threads(system, handle)
    return handle


class _ServiceImpls:
    """Binder handlers bound to one system_server instance."""

    def __init__(
        self, system: "System", handle: SystemServerHandle, zygote: Zygote
    ) -> None:
        self.system = system
        self.handle = handle
        self.zygote = zygote

    # -- ActivityManager -------------------------------------------------

    def handle_activity(self, txn: Transaction) -> Iterator[Op]:
        handle = self.handle
        if txn.code == "start_activity":
            # Resolve intent, create the activity record, request the fork.
            yield handle.ctx.resolve_classes(40)
            for method in handle.methods.pick_batch(30):
                yield handle.ctx.interpret(method)
            on_start: Callable[[], None] | None = txn.args.get("on_start")
            if on_start is not None:
                on_start()
            handle.activities_started += 1
        elif txn.code == "activity_idle":
            for method in handle.methods.pick_batch(4):
                yield handle.ctx.interpret(method)
        elif txn.code == "start_service":
            yield handle.ctx.resolve_classes(16)
            for method in handle.methods.pick_batch(14):
                yield handle.ctx.interpret(method)
            on_start = txn.args.get("on_start")
            if on_start is not None:
                on_start()
        else:
            raise ServiceError(f"activity: unknown code {txn.code!r}")

    # -- WindowManager ---------------------------------------------------

    def handle_window(self, txn: Transaction) -> Iterator[Op]:
        handle = self.handle
        if txn.code == "add_window":
            for method in handle.methods.pick_batch(18):
                yield handle.ctx.interpret(method)
            width = txn.args.get("width", 800)
            height = txn.args.get("height", 480)
            name = txn.args.get("name", f"win:{txn.sender.comm}")
            z = txn.args.get("z", 1)
            surface = handle.sf.create_surface(txn.sender, name, width, height, z)
            txn.reply["surface"] = surface
        elif txn.code == "relayout":
            for method in handle.methods.pick_batch(8):
                yield handle.ctx.interpret(method)
        elif txn.code == "remove_window":
            surface = txn.args["surface"]
            handle.sf.remove_surface(surface)
            for method in handle.methods.pick_batch(6):
                yield handle.ctx.interpret(method)
        else:
            raise ServiceError(f"window: unknown code {txn.code!r}")

    # -- PackageManager ----------------------------------------------------

    def handle_package(self, txn: Transaction) -> Iterator[Op]:
        handle = self.handle
        if txn.code == "query":
            libsqlite = mapped_object(handle.proc, "libsqlite.so")
            yield libsqlite.call("sql_prepare")
            yield libsqlite.call("sql_step", reps=12, insts=1_700 * 12)
            for method in handle.methods.pick_batch(6):
                yield handle.ctx.interpret(method)
        elif txn.code == "install":
            installer = handle.installer
            if installer is None:
                raise ServiceError("package: installer not wired")
            request: InstallRequest = txn.args["request"]
            # Verification inside PMS before the pipeline.
            for method in handle.methods.pick_batch(20):
                yield handle.ctx.interpret(method)
            yield from installer.install_flow(request)
            # Settings write-back (packages.xml).
            settings = self.system.fs.get("packages.xml")
            yield from self.system.fs.write(
                self.handle.host.threads[0], settings, 96 * 1024, handle.ctx.heap_addr(2)
            )
            txn.reply["installed"] = request.package
        else:
            raise ServiceError(f"package: unknown code {txn.code!r}")

    # -- Small services ----------------------------------------------------

    def make_small_service(self, name: str) -> "_SmallService":
        return _SmallService(self.handle)


class _SmallService:
    """A tiny registry-backed service handler (picklable)."""

    def __init__(self, handle: SystemServerHandle) -> None:
        self.handle = handle

    def __call__(self, txn: Transaction) -> Iterator[Op]:
        handle = self.handle
        for method in handle.methods.pick_batch(3):
            yield handle.ctx.interpret(method)


class _InputThread:
    """InputReader/InputDispatcher: a 50Hz libinput poll loop."""

    def __init__(self, proc: "Process", insts: int) -> None:
        self.proc = proc
        self.insts = insts

    def __call__(self, task: "Task") -> Iterator[Op]:
        libinput = mapped_object(self.proc, "libinput.so")
        while True:
            yield Sleep(millis(20))
            yield libinput.call("dispatch_event", insts=self.insts)


class _Watchdog:
    """system_server's watchdog: periodic liveness checks."""

    def __init__(self, handle: SystemServerHandle) -> None:
        self.handle = handle

    def __call__(self, task: "Task") -> Iterator[Op]:
        handle = self.handle
        while True:
            yield Sleep(millis(4_000))
            yield kernel_exec("watchdog_check", 900, 80)
            for method in handle.methods.pick_batch(2):
                yield handle.ctx.interpret(method)


def _spawn_framework_threads(system: "System", handle: SystemServerHandle) -> None:
    """InputReader / InputDispatcher / watchdog / PowerManagerService."""
    kernel = system.kernel
    proc = handle.proc
    kernel.spawn_thread(proc, "InputReader", _InputThread(proc, 180))
    kernel.spawn_thread(proc, "InputDispatcher", _InputThread(proc, 140))
    kernel.spawn_thread(proc, "watchdog", _Watchdog(handle))
