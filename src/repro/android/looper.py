"""Looper/Handler message loops for framework main threads."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator

from repro.libs.registry import mapped_object
from repro.sim.ops import Block, Op

if TYPE_CHECKING:
    from repro.kernel.proc import Kernel
    from repro.kernel.task import Process, Task

MessageHandler = Callable[["Task"], Iterator[Op]]


class Looper:
    """A message queue drained by one thread."""

    def __init__(self, kernel: "Kernel", proc: "Process", name: str = "main") -> None:
        self.kernel = kernel
        self.proc = proc
        self.name = name
        self.queue: deque[MessageHandler] = deque()
        self.waitq = kernel.new_waitq(f"looper:{proc.comm}:{name}")
        self.messages_handled = 0

    def post(self, handler: MessageHandler) -> None:
        """Enqueue a message; wakes the loop if parked."""
        self.queue.append(handler)
        self.waitq.wake_all()

    def behavior(self, task: "Task") -> Iterator[Op]:
        """Run the loop forever on the calling task."""
        libutils = mapped_object(self.proc, "libutils.so")
        while True:
            if not self.queue:
                yield Block(self.waitq)
                continue
            handler = self.queue.popleft()
            yield libutils.call("looper_poll")
            yield from handler(task)
            self.messages_handled += 1
