"""Package installation: PackageManager -> defcontainer -> dexopt.

The flow reproduces the process choreography behind the paper's
``pm.apk.view`` bars: the PackageManagerService (system_server) verifies,
``com.android.defcontainer`` (comm ``id.defcontainer``) copies and
inspects the APK, and a ``dexopt`` process verifies + optimises the dex —
by far the heaviest step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.calibration import current
from repro.dalvik.dex import DexFile, map_dex
from repro.dalvik.zygote import Zygote
from repro.kernel.pagecache import File
from repro.kernel.syscalls import kernel_exec
from repro.libs import bionic
from repro.libs.registry import mapped_object, resolve, run_ctors
from repro.sim.ops import Block, ExecBlock, Op

if TYPE_CHECKING:
    from repro.kernel.task import Process, Task
    from repro.sim.system import System

DEXOPT_LIBS: tuple[str, ...] = (
    "linker",
    "libc.so",
    "liblog.so",
    "libcutils.so",
    "libz.so",
    "libdvm.so",
)


@dataclass
class InstallRequest:
    """One package install."""

    package: str
    apk: File
    dex_kb: int


class Installer:
    """Drives the multi-process install pipeline."""

    def __init__(self, system: "System", zygote: Zygote) -> None:
        self.system = system
        self.zygote = zygote
        self.installs_completed = 0

    # ------------------------------------------------------------------

    def install_flow(self, request: InstallRequest) -> Iterator[Op]:
        """Behaviour fragment run inside a PackageManager binder thread."""
        kernel = self.system.kernel

        # Stage 1: defcontainer copies + inspects the APK.
        dc_done = kernel.new_waitq(f"install:dc:{request.package}")
        self._spawn_defcontainer(request, dc_done)
        yield Block(dc_done)

        # Stage 2: dexopt verifies + optimises the dex.
        opt_done = kernel.new_waitq(f"install:dexopt:{request.package}")
        self._spawn_dexopt(request, opt_done)
        yield Block(opt_done)

        self.installs_completed += 1

    # ------------------------------------------------------------------

    def _spawn_defcontainer(self, request: InstallRequest, done_q) -> "Process":
        """Fork com.android.defcontainer to copy/inspect the APK."""
        system = self.system

        def main(task: "Task") -> Iterator[Op]:
            proc = task.process
            buf = bionic.alloc_buffer(proc, 256 * 1024)
            yield from system.fs.read(task, request.apk, request.apk.size, buf)
            # Unzip the APK and hash it for signature verification.
            cal = current()
            apk_kb = max(request.apk.size // 1024, 1)
            libz = mapped_object(proc, "libz.so")
            yield libz.call(
                "inflate_block",
                insts=apk_kb * cal.inflate_insts_per_kb // 4,
                data=((buf, apk_kb * 6),),
            )
            libcrypto = mapped_object(proc, "libcrypto.so")
            yield libcrypto.call("sha1_block", reps=apk_kb // 4 + 1, data=((buf, apk_kb),))
            done_q.wake_all()
            # Transient helper: tear down the whole process on completion.
            system.kernel.kill_process(proc)

        proc, _ctx = self.zygote.fork_dalvik(
            "com.android.defcontainer",
            main,
            extra_libs=("libcrypto.so",),
            jit_enabled=False,
            nice_threads=False,
        )
        return proc

    def _spawn_dexopt(self, request: InstallRequest, done_q) -> "Process":
        """Spawn the dexopt process for the package's classes.dex."""
        system = self.system
        kernel = system.kernel
        dex = DexFile(f"{request.package}@classes.dex", request.dex_kb)

        def main(task: "Task") -> Iterator[Op]:
            proc = task.process
            yield from run_ctors(proc, DEXOPT_LIBS)
            dex_vma = map_dex(proc, dex)
            libdvm = mapped_object(proc, "libdvm.so")
            cal = current()
            total = request.dex_kb * cal.dexopt_insts_per_kb
            # Verify + optimise in chunks so the scheduler can interleave.
            chunks = 16
            for i in range(chunks):
                yield libdvm.call(
                    "dvmJitCompile",
                    insts=total // chunks,
                    data=(
                        (dex_vma.start + (i * dex_vma.size) // chunks, request.dex_kb * 120),
                    ),
                )
            odex = system.fs.create(f"{request.package}@classes.odex", dex.size_bytes)
            yield from system.fs.write(task, odex, dex.size_bytes // 2, dex_vma.start)
            done_q.wake_all()

        proc = kernel.spawn_process("dexopt", behavior=main)
        kernel.loader.map_many(proc, resolve(DEXOPT_LIBS))
        return proc
