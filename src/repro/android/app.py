"""Application runtime: activities, workers, AsyncTasks, media clients.

:class:`AndroidApp` is the handle a benchmark workload programs against —
a thin ActivityThread: it owns the process's Dalvik context, the window
surface, the worker/AsyncTask pools and media sessions.  The launch
protocol mirrors Android's: launcher -> ActivityManager (binder) ->
zygote fork -> specialisation (as ``app_process``) -> window add ->
first frame -> ``activity_idle``.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Protocol

from repro.android.audioflinger import AudioTrack, audiotrack_thread
from repro.android.binder import transact
from repro.android.surfaceflinger import Surface
from repro.calibration import current
from repro.dalvik.dex import app_dex
from repro.dalvik.method import MethodTable
from repro.dalvik.vm import DalvikContext, dalvik_context
from repro.kernel.pagecache import File
from repro.libs import bionic, regions, skia
from repro.libs import registry
from repro.libs.registry import mapped_object
from repro.sim.ops import Block, ExecBlock, Op, Sleep
from repro.sim.ticks import millis, seconds

if TYPE_CHECKING:
    from repro.android.boot import AndroidStack
    from repro.android.mediaserver import MediaSession
    from repro.kernel.task import Process, Task


class AppModel(Protocol):
    """What a benchmark application must describe."""

    package: str
    extra_libs: tuple[str, ...]
    dex_kb: int
    window: tuple[int, int] | None
    method_count: int
    avg_bytecodes: int
    startup_classes: int
    startup_methods: int

    def run(self, app: "AndroidApp", task: "Task") -> Iterator[Op]:
        """The workload body, executed on the app's main thread."""
        ...


@dataclass
class LaunchRecord:
    """Filled in as the launch pipeline progresses."""

    package: str = ""
    proc: "Process | None" = None
    app: "AndroidApp | None" = None
    finished: bool = False


class AsyncTaskPool:
    """The app's AsyncTask executor (threads named ``AsyncTask #N``)."""

    MAX_THREADS = 5

    def __init__(self, app: "AndroidApp") -> None:
        self.app = app
        self.queue: deque[Callable[["Task"], Iterator[Op]]] = deque()
        self.waitq = app.stack.system.kernel.new_waitq(f"asynctask:{app.proc.comm}")
        self.threads: list["Task"] = []
        self.tasks_run = 0

    def submit(self, work: Callable[["Task"], Iterator[Op]]) -> None:
        """Queue background work, growing the pool on demand."""
        self.queue.append(work)
        if len(self.threads) < self.MAX_THREADS and len(self.queue) > len(
            [t for t in self.threads if t.alive]
        ):
            self._grow()
        self.waitq.wake_all()

    def _grow(self) -> None:
        kernel = self.app.stack.system.kernel
        name = f"AsyncTask #{len(self.threads) + 1}"
        task = kernel.spawn_thread(self.app.proc, name, self._worker)
        self.threads.append(task)

    def _worker(self, task: "Task") -> Iterator[Op]:
        while True:
            if not self.queue:
                yield Block(self.waitq)
                continue
            work = self.queue.popleft()
            yield from work(task)
            self.tasks_run += 1


class AndroidApp:
    """Runtime handle for one launched application."""

    def __init__(
        self,
        stack: "AndroidStack",
        proc: "Process",
        ctx: DalvikContext,
        methods: MethodTable,
        surface: Surface | None,
    ) -> None:
        self.stack = stack
        self.proc = proc
        self.ctx = ctx
        self.methods = methods
        self.surface = surface
        self.asynctasks = AsyncTaskPool(self)
        self.media_sessions: list["MediaSession"] = []
        self.audio_tracks: list[AudioTrack] = []
        self.frames_drawn = 0
        self._next_worker = 8
        self._scratch = bionic.alloc_buffer(proc, 192 * 1024)

    # ------------------------------------------------------------------
    # Java execution

    #: Invocations represented by one method pick (real UI work executes
    #: thousands of small methods per event).
    REPS_PER_PICK = 12

    def interpret_batch(
        self, n: int, task: "Task | None" = None, reps: int | None = None
    ) -> Iterator[Op]:
        """Execute *n* method picks from the app's method table."""
        per_pick = reps if reps is not None else self.REPS_PER_PICK
        for method in self.methods.pick_batch(n):
            yield self.ctx.interpret(method, reps=per_pick, task=task)

    def hot_loop(self, method_idx: int, reps: int, task: "Task | None" = None) -> ExecBlock:
        """Repeatedly run one hot method (drives JIT promotion)."""
        method = self.methods.methods[method_idx % len(self.methods.methods)]
        return self.ctx.interpret(method, reps=reps, task=task)

    # ------------------------------------------------------------------
    # Rendering

    def draw_frame(
        self,
        task: "Task | None" = None,
        coverage: float = 1.0,
        glyphs: int = 0,
        view_methods: int = 6,
    ) -> Iterator[Op]:
        """One UI frame: view traversal, rasterisation, post."""
        if self.surface is None:
            return
        yield from self.interpret_batch(view_methods, task)
        yield from registry.framework_veneer(self.proc)
        yield self._resource_read()
        yield skia.canvas_setup(self.proc)
        npix = int(self.surface.pixels * max(min(coverage, 1.0), 0.0))
        if npix:
            yield from skia.raster(self.proc, npix, self.surface.canvas_addr)
        if glyphs:
            yield from skia.draw_text(self.proc, glyphs, self.surface.canvas_addr)
        # Frame-local garbage: iterators, text buffers, temporary rects.
        yield self.ctx.alloc(9_000 + glyphs * 8 + npix // 64)
        yield from self.surface.post()
        self.frames_drawn += 1

    def _resource_read(self) -> ExecBlock:
        """Resource table lookups against the apk + framework-res maps."""
        androidfw = mapped_object(self.proc, "libandroidfw.so")
        data: list[tuple[int, int]] = []
        apk_addr = regions.asset_addr(self.proc, f"{self.proc.full_name}.apk")
        if apk_addr:
            data.append((apk_addr, 14))
        fw_addr = regions.asset_addr(self.proc, "framework-res.apk")
        if fw_addr:
            data.append((fw_addr, 10))
        return androidfw.call("parse_resources", insts=700, data=tuple(data))

    def decode_bitmap(self, npix: int) -> Iterator[Op]:
        """Decode an image into the dalvik heap (BitmapFactory path)."""
        yield self.ctx.jni_call()
        yield skia.decode_image(self.proc, npix, self.ctx.heap_addr(npix & 0xFFF))
        yield self.ctx.alloc(npix * 2)

    # ------------------------------------------------------------------
    # Concurrency

    def spawn_worker(
        self, behavior: Callable[["Task"], Iterator[Op]], name: str | None = None
    ) -> "Task":
        """Start a plain Java thread (named ``Thread-N`` by default)."""
        if name is None:
            name = f"Thread-{self._next_worker}"
            self._next_worker += 1
        return self.stack.system.kernel.spawn_thread(self.proc, name, behavior)

    def run_async(self, work: Callable[["Task"], Iterator[Op]]) -> None:
        """Submit work to the AsyncTask pool."""
        self.asynctasks.submit(work)

    # ------------------------------------------------------------------
    # Media

    def play_media(
        self, file: File, kind: str, task: "Task | None" = None
    ) -> Iterator[Op]:
        """Start playback through mediaserver (binder round-trip)."""
        kernel = self.stack.system.kernel
        ref = self.stack.registry.lookup("media.player")
        txn = yield from transact(
            kernel, self.proc, ref, "play", payload_words=96,
            args={"file": file, "kind": kind},
        )
        session = txn.reply["session"]
        self.media_sessions.append(session)

    def stop_media(self) -> Iterator[Op]:
        """Stop every session this app started."""
        kernel = self.stack.system.kernel
        ref = self.stack.registry.lookup("media.player")
        for session in self.media_sessions:
            yield from transact(
                kernel, self.proc, ref, "stop", payload_words=16,
                args={"session": session},
            )
        self.media_sessions.clear()

    def start_game_audio(
        self, synth_lib: str = "libsonivox.so", synth_sym: str = "eas_render",
        insts_per_cycle: int = 60_000,
    ) -> AudioTrack:
        """In-process audio: a synth feeding an AudioTrackThread."""
        af = self.stack.mediaserver.af
        track = af.create_track(self.proc, f"game:{self.proc.comm}")
        track.active = True
        self.audio_tracks.append(track)
        synth_buf = self._scratch

        def synth(task: "Task") -> Iterator[Op]:
            lib = mapped_object(self.proc, synth_lib)
            while track.active:
                yield Sleep(millis(20))
                yield lib.call(
                    synth_sym, insts=insts_per_cycle,
                    data=((synth_buf, 420), (track.producer_addr, 220)),
                )
                track.pending_pcm += 3_528

        self.spawn_worker(synth, name="Thread-7")
        kernel = self.stack.system.kernel
        kernel.spawn_thread(
            self.proc, "AudioTrackThread", audiotrack_thread(track, synth_buf)
        )
        return track

    # ------------------------------------------------------------------

    def touch_event(self, task: "Task | None" = None) -> Iterator[Op]:
        """Handle one input event on the main thread."""
        yield from self.interpret_batch(2, task)

    @property
    def scratch_addr(self) -> int:
        """A per-app scratch buffer in the ``anonymous`` region."""
        return self._scratch


# ---------------------------------------------------------------------------
# Launch pipeline

def start_activity(
    stack: "AndroidStack", model: AppModel, background: bool = False
) -> LaunchRecord:
    """Launch *model* through the full framework path.

    Returns immediately; the record's fields fill in as the simulated
    pipeline executes.  ``background=True`` uses startService semantics
    (no window).
    """
    record = LaunchRecord(package=model.package)
    kernel = stack.system.kernel
    code = "start_service" if background else "start_activity"

    def launch_msg(task: "Task") -> Iterator[Op]:
        ref = stack.registry.lookup("activity")
        yield from transact(
            kernel, stack.launcher_proc, ref, code,
            args={"on_start": lambda: _fork_app(stack, model, record, background)},
        )

    stack.launcher_looper.post(launch_msg)
    return record


def _fork_app(
    stack: "AndroidStack", model: AppModel, record: LaunchRecord, background: bool
) -> None:
    kernel = stack.system.kernel
    dex = app_dex(model.package, model.dex_kb)

    def main(task: "Task") -> Iterator[Op]:
        proc = task.process
        ctx = dalvik_context(proc)
        methods = MethodTable.generate_cached(
            seed=stack.system.seed ^ zlib.crc32(model.package.encode()) & 0xFFFF,
            prefix=model.package,
            count=model.method_count,
            avg_bytecodes=model.avg_bytecodes,
        )
        surface: Surface | None = None
        if model.window is not None and not background:
            width, height = model.window
            txn = yield from transact(
                kernel, proc, stack.registry.lookup("window"), "add_window",
                payload_words=128,
                args={"width": width, "height": height,
                      "name": f"app:{model.package}", "z": 2},
            )
            surface = txn.reply["surface"]
        app = AndroidApp(stack, proc, ctx, methods, surface)
        record.app = app
        # Map the package's resources; onCreate: class loading, resource
        # parsing, layout inflation.
        regions.map_asset(proc, f"{model.package}.apk", model.dex_kb * 2 * 1024)
        yield ctx.resolve_classes(model.startup_classes)
        yield from app.interpret_batch(model.startup_methods, task)
        if surface is not None:
            yield from app.draw_frame(task)
        yield from transact(
            kernel, proc, stack.registry.lookup("activity"), "activity_idle",
            payload_words=16,
        )
        yield from model.run(app, task)
        record.finished = True
        while True:
            yield Sleep(seconds(5))

    proc, _ctx = stack.zygote.fork_dalvik(
        model.package,
        main,
        primary_dex=dex,
        extra_libs=model.extra_libs,
        jit_enabled=stack.jit_enabled,
    )
    record.proc = proc
