"""Android framework and services: Binder, SurfaceFlinger, mediaserver,
system_server, app runtime and the boot sequence."""

from repro.android.app import AndroidApp, AppModel, LaunchRecord, start_activity
from repro.android.audioflinger import AudioFlinger, AudioTrack
from repro.android.binder import (
    BinderHost,
    ServiceRef,
    ServiceRegistry,
    Transaction,
    transact,
)
from repro.android.boot import AndroidStack, boot_android
from repro.android.gralloc import GrallocAllocator, GrallocBuffer
from repro.android.installer import Installer, InstallRequest
from repro.android.looper import Looper
from repro.android.mediaserver import MediaPlayerService, MediaServerHandle
from repro.android.surfaceflinger import Surface, SurfaceFlinger
from repro.android.system_server import SystemServerHandle

__all__ = [
    "AndroidApp",
    "AndroidStack",
    "AppModel",
    "AudioFlinger",
    "AudioTrack",
    "BinderHost",
    "GrallocAllocator",
    "GrallocBuffer",
    "InstallRequest",
    "Installer",
    "LaunchRecord",
    "Looper",
    "MediaPlayerService",
    "MediaServerHandle",
    "ServiceRef",
    "ServiceRegistry",
    "Surface",
    "SurfaceFlinger",
    "SystemServerHandle",
    "Transaction",
    "boot_android",
    "start_activity",
    "transact",
]
