"""Binder IPC.

A :class:`BinderHost` is a process's binder thread pool: a shared
transaction queue drained by ``Binder Thread #N`` tasks.  Services register
named handlers on their host; :func:`transact` marshals on the client,
crosses the (synthesised) kernel driver, enqueues on the target host and —
for synchronous calls — blocks the caller until the handler replies.

This is the mechanism that moves work *across processes*: a client's
``MediaPlayer.start()`` ends up executing stagefright code attributed to
``mediaserver``, which is precisely the effect the paper measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import BinderError
from repro.faults.runtime import active_injector
from repro.kernel.syscalls import kernel_exec
from repro.libs import regions
from repro.libs.registry import framework_veneer, mapped_object
from repro.sim.ops import Block, ExecBlock, Op

if TYPE_CHECKING:
    from repro.kernel.proc import Kernel
    from repro.kernel.task import Process, Task
    from repro.kernel.waitq import WaitQueue

Handler = Callable[["Transaction"], Iterator[Op]]


@dataclass
class Transaction:
    """One binder transaction in flight."""

    service: str
    code: str
    payload_words: int
    sender: "Process"
    reply_q: "WaitQueue | None"
    oneway: bool = False
    #: Free-form arguments passed to the handler.
    args: dict = field(default_factory=dict)
    #: Handler-filled reply values readable by the sender after wakeup.
    reply: dict = field(default_factory=dict)
    completed: bool = False


class BinderHost:
    """Per-process binder thread pool and service table."""

    def __init__(self, kernel: "Kernel", proc: "Process", nthreads: int = 2) -> None:
        self.kernel = kernel
        self.proc = proc
        self.queue: deque[Transaction] = deque()
        self.waitq = kernel.new_waitq(f"binder:{proc.comm}")
        self.handlers: dict[str, Handler] = {}
        self.threads: list[Task] = []
        self.transactions_served = 0
        regions.ensure_binder_mapping(proc)
        for i in range(nthreads):
            task = kernel.spawn_thread(
                proc, f"Binder Thread #{i + 1}", self._thread_behavior
            )
            self.threads.append(task)

    def register(self, service: str, handler: Handler) -> None:
        """Expose *service* on this host."""
        if service in self.handlers:
            raise BinderError(f"{self.proc.comm}: service {service!r} already bound")
        self.handlers[service] = handler

    # ------------------------------------------------------------------

    def _thread_behavior(self, task: "Task") -> Iterator[Op]:
        proc = self.proc
        while True:
            if not self.queue:
                yield Block(self.waitq)
                continue
            txn = self.queue.popleft()
            handler = self.handlers.get(txn.service)
            if handler is None:
                raise BinderError(
                    f"{proc.comm}: no handler for service {txn.service!r}"
                )
            injector = active_injector()
            if injector is not None:
                outcome = injector.binder_outcome(txn)
                if outcome == "drop":
                    # Fire-and-forget code: the driver rejects it and the
                    # stack absorbs the loss — no handler, empty reply.
                    yield kernel_exec("binder_txn_fail", 900, 110)
                    txn.completed = True
                    self.transactions_served += 1
                    if not txn.oneway and txn.reply_q is not None:
                        txn.reply_q.wake_all()
                    continue
                if outcome == "retry":
                    # The sender is blocked on reply values: a failed
                    # delivery costs a fail + resubmit detour, then the
                    # transaction goes through normally.
                    yield kernel_exec("binder_txn_fail", 900, 110)
                    yield kernel_exec("binder_txn_retry", 700, 90)
            # Driver-side delivery + server-side unmarshal.
            yield kernel_exec("binder_txn_deliver", 1_100, 140)
            libbinder = mapped_object(proc, "libbinder.so")
            binder_map = regions.ensure_binder_mapping(proc)
            yield libbinder.call(
                "ipc_thread_loop",
                data=((binder_map.start + 4_096, max(txn.payload_words // 2, 8)),),
            )
            yield from handler(txn)
            yield from framework_veneer(proc, nlibs=4, insts_each=120)
            txn.completed = True
            self.transactions_served += 1
            if not txn.oneway and txn.reply_q is not None:
                yield kernel_exec("binder_txn_reply", 800, 90)
                txn.reply_q.wake_all()


@dataclass(frozen=True)
class ServiceRef:
    """Client-side handle to a remote service."""

    name: str
    host: BinderHost


class ServiceRegistry:
    """The servicemanager's name -> handle table."""

    def __init__(self) -> None:
        self._services: dict[str, ServiceRef] = {}

    def add(self, name: str, host: BinderHost, handler: Handler) -> ServiceRef:
        """Register a service handler on *host* and publish it."""
        host.register(name, handler)
        ref = ServiceRef(name, host)
        self._services[name] = ref
        return ref

    def lookup(self, name: str) -> ServiceRef:
        """Resolve a service by name."""
        try:
            return self._services[name]
        except KeyError:
            raise BinderError(f"service {name!r} not registered") from None

    def names(self) -> tuple[str, ...]:
        """All published service names."""
        return tuple(sorted(self._services))


def transact(
    kernel: "Kernel",
    client: "Process",
    ref: ServiceRef,
    code: str,
    payload_words: int = 64,
    oneway: bool = False,
    args: dict | None = None,
) -> Iterator[Op]:
    """Behaviour fragment performing one binder call from *client*.

    The transaction object is yielded to the caller through the generator's
    return value (``yield from`` captures it), carrying any reply values.
    """
    libbinder = mapped_object(client, "libbinder.so")
    binder_map = regions.ensure_binder_mapping(client)
    # Client-side marshalling into the binder mapping.
    yield libbinder.call(
        "parcel_marshal",
        insts=max(payload_words * 9, 64),
        data=((binder_map.start, max(payload_words // 2, 4)),),
    )
    yield libbinder.call("transact")
    yield kernel_exec("binder_ioctl_write", 1_300, 160)

    txn = Transaction(
        service=ref.name,
        code=code,
        payload_words=payload_words,
        sender=client,
        reply_q=None if oneway else kernel.new_waitq(f"reply:{ref.name}:{code}"),
        oneway=oneway,
        args=dict(args or {}),
    )
    ref.host.queue.append(txn)
    ref.host.waitq.wake_all()
    if not oneway:
        yield Block(txn.reply_q)  # type: ignore[arg-type]
        # Unmarshal the reply.
        yield libbinder.call(
            "parcel_marshal",
            insts=max(payload_words * 4, 32),
            data=((binder_map.start + 8_192, max(payload_words // 4, 2)),),
        )
    return txn
