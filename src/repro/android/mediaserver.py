"""mediaserver: MediaPlayerService + AudioFlinger host process.

Playback sessions created over Binder run their decode loops on worker
threads *inside mediaserver* (named ``Thread-N`` as anonymous pool threads
are), feed PCM through an AudioTrackThread into AudioFlinger's mixer, and
— for video — write decoded frames into overlay gralloc buffers flipped
straight to fb0 (the Gingerbread overlay path, which is why the paper sees
mediaserver dominate gallery.mp4.view instead of SurfaceFlinger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.android.audioflinger import AudioFlinger, AudioTrack, audiotrack_thread
from repro.android.binder import BinderHost, ServiceRegistry, Transaction
from repro.android.surfaceflinger import Surface, SurfaceFlinger
from repro.calibration import current
from repro.errors import ServiceError
from repro.kernel.pagecache import File
from repro.kernel.syscalls import kernel_exec
from repro.kernel.vma import LABEL_FB0, PERM_RW, VMAKind
from repro.libs import bionic, regions, stagefright
from repro.libs.registry import framework_veneer, mapped_object, resolve, run_ctors
from repro.sim.ops import ExecBlock, Op, Sleep, merge_data
from repro.sim.ticks import millis

if TYPE_CHECKING:
    from repro.kernel.task import Process, Task
    from repro.sim.system import System

#: Native libraries of the mediaserver process.
MEDIASERVER_LIBS: tuple[str, ...] = (
    "linker",
    "libc.so",
    "libm.so",
    "libstdc++.so",
    "liblog.so",
    "libcutils.so",
    "libbinder.so",
    "libutils.so",
    "libmedia.so",
    "libstagefright.so",
    "libstagefright_omx.so",
    "libaudioflinger.so",
    "libvorbisidec.so",
    "libsonivox.so",
    "libhardware.so",
    "libui.so",
    "libsurfaceflinger_client.so",
    "libskia.so",
    "libz.so",
)

#: Batch of MP3 frames decoded per scheduling quantum.
MP3_BATCH = 8


@dataclass
class MediaSession:
    """One active playback."""

    session_id: int
    file: File
    kind: str
    track: AudioTrack
    video_surface: Surface | None
    decode_buf: int
    in_buf: int
    active: bool = True
    frames_decoded: int = field(default=0)
    video_frames: int = field(default=0)


class MediaPlayerService:
    """The ``media.player`` binder service."""

    def __init__(
        self,
        system: "System",
        proc: "Process",
        host: BinderHost,
        af: AudioFlinger,
        sf: SurfaceFlinger,
        registry: ServiceRegistry,
    ) -> None:
        self.system = system
        self.proc = proc
        self.host = host
        self.af = af
        self.sf = sf
        self.sessions: list[MediaSession] = []
        self._next_id = 1
        self._next_worker = 10
        registry.add("media.player", host, self.handle)

    # ------------------------------------------------------------------

    def handle(self, txn: Transaction) -> Iterator[Op]:
        """Dispatch one binder call."""
        if txn.code == "play":
            yield from self._handle_play(txn)
        elif txn.code == "stop":
            yield from self._handle_stop(txn)
        else:
            raise ServiceError(f"media.player: unknown code {txn.code!r}")

    def _handle_play(self, txn: Transaction) -> Iterator[Op]:
        file: File = txn.args["file"]
        kind: str = txn.args["kind"]
        kernel = self.system.kernel
        proc = self.proc

        in_buf = bionic.alloc_buffer(proc, 256 * 1024)
        decode_buf = bionic.alloc_buffer(proc, 512 * 1024)
        yield bionic.malloc_cost(proc, decode_buf, 512 * 1024)
        # Stagefright's FileSource mmaps the media; sniff the container.
        media_vma = regions.map_asset(proc, file.name, file.size)
        yield from self.system.fs.read(
            self.host.threads[0], file, 64 * 1024, in_buf
        )
        yield stagefright.parse_metadata(proc, media_vma.start + 4_096)

        track = self.af.create_track(proc, f"session{self._next_id}")
        track.active = True
        video_surface: Surface | None = None
        if kind == "mp4":
            self._ensure_overlay_fb(proc)
            video_surface = self.sf.create_surface(
                proc, f"video:{self._next_id}", 800, 480, z=5, overlay=True
            )
            video_surface.layer.dirty = False

        session = MediaSession(
            session_id=self._next_id,
            file=file,
            kind=kind,
            track=track,
            video_surface=video_surface,
            decode_buf=decode_buf,
            in_buf=in_buf,
        )
        self._next_id += 1
        self.sessions.append(session)

        # Stagefright decode runs on a TimedEventQueue thread.
        self._next_worker += 1
        kernel.spawn_thread(proc, "TimedEventQueue", self._decode_loop(session))
        # The PCM feeder follows the mixer onto the big cluster (audio
        # underruns are what big.LITTLE pinning exists to prevent).
        kernel.spawn_thread(
            proc, "AudioTrackThread",
            audiotrack_thread(track, session.decode_buf),
            affinity=self.system.big_cpu(1), nice=-16,
        )
        txn.reply["session"] = session

    def _handle_stop(self, txn: Transaction) -> Iterator[Op]:
        session: MediaSession = txn.args["session"]
        session.active = False
        session.track.active = False
        yield kernel_exec("binder_session_teardown", 600, 60)

    # ------------------------------------------------------------------

    def _ensure_overlay_fb(self, proc: "Process") -> None:
        """Map fb0 into mediaserver for the video overlay path."""
        if proc.has_region(LABEL_FB0):
            return
        fb = self.system.devices.framebuffer
        vma = proc.mm.mmap(fb.frame_bytes * 2, LABEL_FB0, VMAKind.DEVICE, PERM_RW)
        proc.add_region(LABEL_FB0, vma)

    def _decode_loop(self, session: MediaSession):
        """Behaviour factory for a session's decode worker."""

        def behavior(task: "Task") -> Iterator[Op]:
            proc = self.proc
            fs = self.system.fs
            while session.active:
                yield from framework_veneer(proc, nlibs=3)
                if session.kind == "mp3":
                    yield from fs.read_warm(
                        task, session.file, 12 * 1024, session.in_buf
                    )
                    for _ in range(MP3_BATCH):
                        yield stagefright.mp3_decode_frame(
                            proc, session.in_buf, session.decode_buf
                        )
                        session.frames_decoded += 1
                        session.track.pending_pcm += stagefright.MP3_FRAME_PCM_BYTES
                    yield Sleep(int(MP3_BATCH * stagefright.MP3_FRAME_MS * 1_000_000))
                elif session.kind == "mp4":
                    yield from fs.read_warm(
                        task, session.file, 48 * 1024, session.in_buf
                    )
                    yield stagefright.demux_sample(proc, session.in_buf)
                    surface = session.video_surface
                    npix = surface.pixels if surface is not None else 384_000
                    out_addr = (
                        surface.canvas_addr if surface is not None else session.decode_buf
                    )
                    yield stagefright.avc_decode_frame(
                        proc, npix, session.in_buf, out_addr
                    )
                    session.video_frames += 1
                    # Overlay flip: decoded frame goes straight to fb0.
                    if proc.has_region(LABEL_FB0):
                        fb_addr = proc.region_addr(LABEL_FB0)
                        libui = mapped_object(proc, "libui.so")
                        yield libui.call(
                            "gralloc_lock",
                            insts=max(npix // 12, 256),
                            data=merge_data(
                                (out_addr, npix // 24), (fb_addr, npix // 24)
                            ),
                        )
                    if surface is not None:
                        surface.layer.dirty = True
                    # Audio side: one AAC frame batch every other video frame.
                    if session.video_frames % 2 == 0:
                        yield stagefright.aac_decode_frame(
                            proc, session.in_buf, session.decode_buf
                        )
                        session.track.pending_pcm += 8_192
                    yield Sleep(millis(33))
                else:
                    raise ServiceError(f"unknown media kind {session.kind!r}")

        return behavior


@dataclass
class MediaServerHandle:
    """Everything the stack needs to talk to mediaserver."""

    proc: "Process"
    host: BinderHost
    af: AudioFlinger
    mps: MediaPlayerService


class _MediaserverMain:
    """mediaserver's main loop (picklable behaviour factory)."""

    def __init__(self, proc: "Process") -> None:
        self.proc = proc

    def __call__(self, task: "Task") -> Iterator[Op]:
        yield from run_ctors(self.proc, MEDIASERVER_LIBS)
        while True:
            yield Sleep(millis(2_000))
            yield kernel_exec("mediaserver_housekeeping", 500, 40)


def boot_mediaserver(
    system: "System", sf: SurfaceFlinger, registry: ServiceRegistry
) -> MediaServerHandle:
    """Create the mediaserver process, its services and threads."""
    kernel = system.kernel
    proc = kernel.spawn_process("mediaserver", behavior=None)
    kernel.loader.map_many(proc, resolve(MEDIASERVER_LIBS))
    regions.ensure_property_space(proc)
    kernel.set_main_behavior(proc, _MediaserverMain(proc))

    host = BinderHost(kernel, proc, nthreads=3)
    af = AudioFlinger(system, proc)
    # The mixer is the audio pipeline's deadline thread: BSPs park it on
    # a big core (the second one, away from SurfaceFlinger) at elevated
    # priority.  big_cpu() is None on symmetric machines — no pin.
    kernel.spawn_thread(
        proc, "AudioOut_1", af.mixer_behavior,
        affinity=system.big_cpu(1), nice=-16,
    )
    mps = MediaPlayerService(system, proc, host, af, sf, registry)
    return MediaServerHandle(proc, host, af, mps)
