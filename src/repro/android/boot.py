"""Full Android boot: assembles the Gingerbread process roster.

``boot_android`` brings up the kernel threads, the native daemons, zygote,
system_server (with SurfaceFlinger), mediaserver (with AudioFlinger), the
launcher and systemui, plus the quiet Dalvik residents — reproducing the
20-34 process environment every Agave benchmark runs inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.android.binder import ServiceRegistry
from repro.android.installer import Installer
from repro.android.looper import Looper
from repro.android.mediaserver import MediaServerHandle, boot_mediaserver
from repro.android.surfaceflinger import Surface
from repro.android.system_server import SystemServerHandle, boot_system_server
from repro.dalvik.vm import dalvik_context
from repro.dalvik.zygote import Zygote
from repro.kernel.syscalls import kernel_exec
from repro.libs import regions, skia
from repro.libs.registry import framework_veneer, resolve, run_ctors
from repro.sim.ops import Op, Sleep
from repro.sim.ticks import millis, seconds

if TYPE_CHECKING:
    from repro.android.binder import BinderHost
    from repro.kernel.task import Process, Task
    from repro.sim.system import System

#: Minimal library set for native daemons.
DAEMON_LIBS: tuple[str, ...] = (
    "linker",
    "libc.so",
    "liblog.so",
    "libcutils.so",
)

#: Native daemons of the Gingerbread base system:
#: (name, period_ms, insts, extra libraries).
DAEMON_SPECS: tuple[tuple[str, int, int, tuple[str, ...]], ...] = (
    ("init", 2_000, 300, ()),
    ("servicemanager", 1_200, 250, ("libbinder.so",)),
    ("vold", 1_500, 280, ("libsysutils.so", "libdiskconfig.so")),
    ("netd", 1_300, 300, ("libsysutils.so", "libnetutils.so")),
    ("rild", 900, 350, ("libril.so", "libreference-ril.so")),
    ("adbd", 700, 400, ("libcrypto.so",)),
    ("debuggerd", 2_500, 120, ()),
    ("installd", 2_200, 150, ()),
    ("keystore", 2_600, 130, ("libssl.so", "libcrypto.so")),
)


@dataclass
class AndroidStack:
    """Handles into a booted Android system."""

    system: "System"
    zygote: Zygote
    registry: ServiceRegistry
    system_server: SystemServerHandle
    mediaserver: MediaServerHandle
    installer: Installer
    launcher_proc: "Process"
    launcher_looper: Looper
    systemui_proc: "Process"
    daemons: list["Process"] = field(default_factory=list)
    jit_enabled: bool = True

    @property
    def sf(self):
        """The SurfaceFlinger instance (lives in system_server)."""
        return self.system_server.sf

    @property
    def af(self):
        """The AudioFlinger instance (lives in mediaserver)."""
        return self.mediaserver.af


def boot_android(system: "System", jit_enabled: bool = True) -> AndroidStack:
    """Boot the full stack onto *system* and return the handles.

    The returned stack has scheduled all boot work as task behaviours; run
    the engine (e.g. ``system.run_for(settle)``) to let init complete
    before opening a measurement window.
    """
    kernel = system.kernel
    system.boot_kernel()
    daemons = _spawn_daemons(system)

    registry = ServiceRegistry()
    zygote = Zygote(system)
    zygote.boot()

    ss = boot_system_server(system, registry, zygote, jit_enabled)
    ms = boot_mediaserver(system, ss.sf, registry)
    installer = Installer(system, zygote)
    ss.installer = installer

    launcher_proc, launcher_looper = _boot_launcher(
        system, registry, zygote, ss, jit_enabled
    )
    systemui_proc = _boot_systemui(system, registry, zygote, ss, jit_enabled)
    _boot_residents(system, zygote, jit_enabled)

    stack = AndroidStack(
        system=system,
        zygote=zygote,
        registry=registry,
        system_server=ss,
        mediaserver=ms,
        installer=installer,
        launcher_proc=launcher_proc,
        launcher_looper=launcher_looper,
        systemui_proc=systemui_proc,
        daemons=daemons,
        jit_enabled=jit_enabled,
    )
    return stack


# ---------------------------------------------------------------------------
#
# Boot-time behaviour factories are module-level classes (not closures) so
# a freshly-booted, never-run system — the boot snapshot template — holds
# only picklable state.


class _DaemonMain:
    """A native daemon's ctor run + periodic poll loop."""

    def __init__(
        self, proc: "Process", period_ms: int, insts: int, libs: tuple[str, ...]
    ) -> None:
        self.proc = proc
        self.period_ms = period_ms
        self.insts = insts
        self.libs = libs

    def __call__(self, task: "Task") -> Iterator[Op]:
        proc = self.proc
        yield from run_ctors(proc, self.libs)
        while True:
            yield Sleep(millis(self.period_ms))
            yield kernel_exec(f"daemon_poll:{proc.comm}", self.insts, 40)
            yield from framework_veneer(proc, nlibs=2, insts_each=90)


def _spawn_daemons(system: "System") -> list["Process"]:
    kernel = system.kernel
    procs: list["Process"] = []
    for name, period_ms, insts, extra in DAEMON_SPECS:
        proc = kernel.spawn_process(name)
        libs = DAEMON_LIBS + extra
        kernel.loader.map_many(proc, resolve(libs))
        kernel.set_main_behavior(proc, _DaemonMain(proc, period_ms, insts, libs))
        procs.append(proc)
    return procs


class _LauncherMain:
    """The home screen: draws once, then serves launch messages.

    ``looper`` is attached after construction (the Looper needs the
    forked process, which needs this behaviour first).
    """

    def __init__(self, ss: SystemServerHandle) -> None:
        self.ss = ss
        self.looper: Looper | None = None

    def __call__(self, task: "Task") -> Iterator[Op]:
        proc = task.process
        ctx = dalvik_context(proc)
        surface = self.ss.sf.create_surface(proc, "home", 800, 480, z=0)
        yield ctx.resolve_classes(220)
        # Wallpaper + icon grid.
        yield skia.decode_image(proc, 384_000, ctx.heap_addr(1))
        yield skia.canvas_setup(proc)
        yield from skia.raster(proc, 384_000, surface.canvas_addr)
        yield from surface.post()
        assert self.looper is not None
        yield from self.looper.behavior(task)


def _boot_launcher(
    system: "System", registry: ServiceRegistry, zygote: Zygote,
    ss: SystemServerHandle, jit_enabled: bool = True,
) -> tuple["Process", Looper]:
    """The home screen: draws once, then serves launch messages."""
    kernel = system.kernel
    main = _LauncherMain(ss)
    proc, _ctx = zygote.fork_dalvik(
        "com.android.launcher", main, jit_enabled=jit_enabled
    )
    looper = Looper(kernel, proc, "main")
    main.looper = looper
    return proc, looper


class _SystemUiMain:
    """Status bar: 1Hz clock updates keep a small SF layer live."""

    def __init__(self, ss: SystemServerHandle) -> None:
        self.ss = ss

    def __call__(self, task: "Task") -> Iterator[Op]:
        proc = task.process
        ctx = dalvik_context(proc)
        surface = self.ss.sf.create_surface(proc, "statusbar", 800, 38, z=10)
        yield ctx.resolve_classes(160)
        yield skia.canvas_setup(proc)
        yield from skia.raster(proc, surface.pixels, surface.canvas_addr)
        yield from surface.post()
        while True:
            yield Sleep(seconds(1))
            yield ctx.alloc(96)
            yield skia.canvas_setup(proc)
            yield from skia.raster(proc, 6_000, surface.canvas_addr)
            yield from surface.post()


def _boot_systemui(
    system: "System", registry: ServiceRegistry, zygote: Zygote,
    ss: SystemServerHandle, jit_enabled: bool = True,
) -> "Process":
    """Status bar: 1Hz clock updates keep a small SF layer live."""
    proc, _ctx = zygote.fork_dalvik(
        "com.android.systemui", _SystemUiMain(ss), jit_enabled=jit_enabled
    )
    return proc


class _ResidentMain:
    """A quiet Dalvik resident: resolve classes, then idle allocations."""

    def __init__(self, classes: int, period_ms: int) -> None:
        self.classes = classes
        self.period_ms = period_ms

    def __call__(self, task: "Task") -> Iterator[Op]:
        proc = task.process
        ctx = dalvik_context(proc)
        yield ctx.resolve_classes(self.classes)
        while True:
            yield Sleep(millis(self.period_ms))
            yield ctx.alloc(128)


def _boot_residents(
    system: "System", zygote: Zygote, jit_enabled: bool = True
) -> None:
    """Quiet Dalvik residents: acore and phone."""
    zygote.fork_dalvik(
        "android.process.acore", _ResidentMain(140, 3_000), jit_enabled=jit_enabled
    )
    zygote.fork_dalvik(
        "com.android.phone", _ResidentMain(120, 2_000),
        extra_libs=("libril.so",),
        jit_enabled=jit_enabled,
    )
