"""AudioFlinger and AudioTrack.

AudioFlinger's mixer thread (``AudioOut_1``) lives in mediaserver and mixes
active tracks into the audio device every 20ms.  Each playing client owns
an ``AudioTrackThread`` that moves decoded PCM from the producer's buffer
into the track's shared memory — the thread the paper ranks at 5.9% of
suite references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.calibration import current
from repro.kernel.syscalls import kernel_exec
from repro.libs import regions
from repro.libs.registry import mapped_object
from repro.sim.ops import Op, Sleep, merge_data
from repro.sim.ticks import millis

if TYPE_CHECKING:
    from repro.kernel.task import Process, Task
    from repro.kernel.vma import VMA
    from repro.sim.devices import AudioDevice
    from repro.sim.system import System

#: Mixer period: 20ms of PCM per cycle.
MIX_PERIOD_TICKS = millis(20)
#: Sample-frames per mix cycle at 44.1kHz.
FRAMES_PER_MIX = 882
#: Bytes per stereo 16-bit sample-frame.
BYTES_PER_FRAME = 4


@dataclass
class AudioTrack:
    """Shared-memory PCM channel between one producer and the mixer.

    The ashmem buffer is mapped into *both* the producer process and
    mediaserver (as real AudioTrack cblk memory is), so each side's
    references resolve in its own address space.
    """

    name: str
    producer: "Process"
    producer_vma: "VMA"
    server_vma: "VMA"
    active: bool = False
    #: Bytes of decoded PCM waiting to be fed into shared memory.
    pending_pcm: int = 0
    #: Bytes fed and not yet mixed.
    buffered: int = 0
    bytes_played: int = field(default=0)

    @property
    def producer_addr(self) -> int:
        """The shared buffer as seen by the producer process."""
        return self.producer_vma.start + 1_024

    @property
    def server_addr(self) -> int:
        """The shared buffer as seen by mediaserver (the mixer side)."""
        return self.server_vma.start + 1_024


class AudioFlinger:
    """The mixer service living in mediaserver."""

    def __init__(self, system: "System", proc: "Process") -> None:
        self.system = system
        self.proc = proc
        self.tracks: list[AudioTrack] = []
        self.mix_cycles = 0

    def create_track(self, producer: "Process", name: str) -> AudioTrack:
        """Allocate a track; its ashmem maps into producer + mediaserver."""
        producer_vma = regions.ashmem_region(producer, f"audiotrack:{name}", 64 * 1024)
        if producer is self.proc:
            server_vma = producer_vma
        else:
            server_vma = regions.ashmem_region(
                self.proc, f"audiotrack:{name}", 64 * 1024
            )
        track = AudioTrack(
            name=name, producer=producer,
            producer_vma=producer_vma, server_vma=server_vma,
        )
        self.tracks.append(track)
        return track

    def mixer_behavior(self, task: "Task") -> Iterator[Op]:
        """The ``AudioOut_1`` thread."""
        libaf = mapped_object(self.proc, "libaudioflinger.so")
        device: "AudioDevice" = self.system.devices.audio
        while True:
            yield Sleep(MIX_PERIOD_TICKS)
            active = [t for t in self.tracks if t.active and t.buffered > 0]
            if not active:
                continue
            cal = current()
            out_bytes = FRAMES_PER_MIX * BYTES_PER_FRAME
            insts = max(int(FRAMES_PER_MIX * cal.mix_insts_per_frame * len(active)), 64)
            data = [(t.server_addr, FRAMES_PER_MIX // 4) for t in active]
            yield libaf.call(
                "mix_buffer",
                insts=insts,
                data=merge_data(*data, (libaf.data_addr(256), FRAMES_PER_MIX // 8)),
            )
            yield kernel_exec("audio_hw_write", 900, out_bytes // 32)
            for t in active:
                consumed = min(t.buffered, out_bytes)
                t.buffered -= consumed
                t.bytes_played += consumed
            device.write(out_bytes)
            self.mix_cycles += 1


def audiotrack_thread(track: AudioTrack, source_addr: int):
    """Behaviour factory for a client's AudioTrackThread.

    Moves pending PCM from the producer's decode buffer into the track's
    shared memory (resampling + volume), 20ms at a time.
    """

    def behavior(task: "Task") -> Iterator[Op]:
        libmedia = mapped_object(track.producer, "libmedia.so")
        while True:
            yield Sleep(MIX_PERIOD_TICKS)
            if not track.active or track.pending_pcm <= 0:
                continue
            cal = current()
            chunk = min(track.pending_pcm, FRAMES_PER_MIX * BYTES_PER_FRAME * 2)
            insts = max(int(chunk * cal.audiotrack_insts_per_byte), 64)
            yield libmedia.call(
                "audiotrack_cb",
                insts=insts,
                data=merge_data(
                    (source_addr, max(chunk // 16, 8)),
                    (track.producer_addr, max(chunk // 16, 8)),
                ),
            )
            track.pending_pcm -= chunk
            track.buffered += chunk

    return behavior
