"""SurfaceFlinger: the display compositor thread.

SurfaceFlinger runs as a thread of ``system_server`` (as it did in
Gingerbread).  Every vsync it composites the dirty visible layers from
their gralloc buffers into the fb0 mapping.  Pixel work executes from
system_server's ``mspace`` arena (specialised blitters) — the combination
that makes SurfaceFlinger the paper's top thread (43.4%) and ``mspace``
the top instruction region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.android.gralloc import GrallocAllocator, GrallocBuffer
from repro.calibration import current
from repro.kernel.vma import LABEL_FB0, PERM_RW, VMA, VMAKind
from repro.libs import regions
from repro.libs.registry import framework_veneer, mapped_object
from repro.sim.ops import ExecBlock, Op, Sleep, merge_data

if TYPE_CHECKING:
    from repro.kernel.task import Process, Task
    from repro.sim.devices import FramebufferDevice
    from repro.sim.system import System

#: 60Hz vsync period in ticks.
VSYNC_TICKS = 16_666_667


@dataclass
class Layer:
    """One composited window."""

    name: str
    buffer: GrallocBuffer
    z: int = 0
    visible: bool = True
    dirty: bool = False
    #: Overlay layers (video) reach the panel through the hardware overlay
    #: engine: SurfaceFlinger only flips them, it never touches pixels.
    overlay: bool = False
    frames_posted: int = field(default=0)


class Surface:
    """Client-side handle to a SurfaceFlinger layer."""

    def __init__(self, sf: "SurfaceFlinger", layer: Layer, client: "Process") -> None:
        self.sf = sf
        self.layer = layer
        self.client = client

    @property
    def width(self) -> int:
        """Surface width in pixels."""
        return self.layer.buffer.width

    @property
    def height(self) -> int:
        """Surface height in pixels."""
        return self.layer.buffer.height

    @property
    def pixels(self) -> int:
        """Pixel count of the surface."""
        return self.layer.buffer.pixels

    @property
    def canvas_addr(self) -> int:
        """Address the client rasterises into."""
        return self.layer.buffer.client_addr

    def post(self) -> Iterator[Op]:
        """Queue the back buffer for composition (client-side cost + flag)."""
        sfc = mapped_object(self.client, "libsurfaceflinger_client.so")
        yield sfc.call("surface_post")
        self.layer.dirty = True
        self.layer.frames_posted += 1
        self.sf.frames_requested += 1


class SurfaceFlinger:
    """The compositor service."""

    def __init__(self, system: "System", proc: "Process") -> None:
        self.system = system
        self.proc = proc
        self.allocator = GrallocAllocator(proc)
        self.layers: dict[str, Layer] = {}
        fb = system.devices.framebuffer
        self.fb_vma: VMA = proc.mm.mmap(
            fb.frame_bytes * 2, LABEL_FB0, VMAKind.DEVICE, PERM_RW
        )
        proc.add_region(LABEL_FB0, self.fb_vma)
        regions.ensure_mspace(proc)
        self.frames_composited = 0
        self.frames_requested = 0
        self.layers_created = 0

    # ------------------------------------------------------------------

    def create_surface(
        self,
        client: "Process",
        name: str,
        width: int,
        height: int,
        z: int = 0,
        overlay: bool = False,
    ) -> Surface:
        """Allocate a layer + buffer for *client*."""
        buf = self.allocator.allocate(client, name, width, height)
        layer = Layer(name=name, buffer=buf, z=z, overlay=overlay)
        self.layers[name] = layer
        self.layers_created += 1
        return Surface(self, layer, client)

    def remove_surface(self, surface: Surface) -> None:
        """Tear down a layer (window destroyed)."""
        self.layers.pop(surface.layer.name, None)
        self.allocator.release(surface.layer.buffer, surface.client)

    def visible_layers(self) -> list[Layer]:
        """Visible layers in z order."""
        return sorted(
            (l for l in self.layers.values() if l.visible), key=lambda l: l.z
        )

    # ------------------------------------------------------------------

    def thread_behavior(self, task: "Task") -> Iterator[Op]:
        """The SurfaceFlinger thread: composite dirty layers every vsync."""
        libsf = mapped_object(self.proc, "libsurfaceflinger.so")
        while True:
            yield Sleep(VSYNC_TICKS)
            dirty = [l for l in self.visible_layers() if l.dirty]
            if not dirty:
                continue
            cal = current()
            yield libsf.call("composite_setup")
            yield from framework_veneer(self.proc, nlibs=3, insts_each=110)
            fb_addr = self.fb_vma.start + 4_096
            code = regions.mspace_code_addr(self.proc)
            for layer in dirty:
                layer.dirty = False
                if layer.overlay:
                    # Hardware overlay: program the engine, no pixel work.
                    yield libsf.call(
                        "handle_transaction",
                        insts=cal.overlay_flip_insts,
                        data=((fb_addr, 40),),
                    )
                    continue
                npix = layer.buffer.pixels
                insts = max(int(npix * cal.sf_insts_per_pixel), 64)
                refs = max(int(npix * cal.sf_refs_per_pixel), 8)
                yield ExecBlock(
                    code,
                    insts,
                    merge_data(
                        (layer.buffer.server_addr, (refs * 3) // 5),
                        (fb_addr, (refs * 2) // 5),
                    ),
                )
            self.frames_composited += 1
            self.system.devices.framebuffer.post()
