"""Gralloc: graphics buffer allocation.

A gralloc buffer is shared memory mapped both into the client (which draws
into it) and into system_server (where SurfaceFlinger composites from it).
Both mappings carry the ``gralloc-buffer`` label, so references from either
side land in the region the paper's Figure 2 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.kernel.vma import LABEL_GRALLOC, PERM_RW, VMA, VMAKind

if TYPE_CHECKING:
    from repro.kernel.task import Process


@dataclass
class GrallocBuffer:
    """One double-buffered window surface."""

    name: str
    width: int
    height: int
    bytes_per_pixel: int
    client_vma: VMA
    server_vma: VMA

    @property
    def pixels(self) -> int:
        """Pixel count of the buffer."""
        return self.width * self.height

    @property
    def nbytes(self) -> int:
        """Byte size of the buffer."""
        return self.pixels * self.bytes_per_pixel

    @property
    def client_addr(self) -> int:
        """Address of the buffer in the drawing process."""
        return self.client_vma.start + 4_096

    @property
    def server_addr(self) -> int:
        """Address of the buffer in system_server (SurfaceFlinger side)."""
        return self.server_vma.start + 4_096


class GrallocAllocator:
    """Allocates shared window buffers between clients and the compositor."""

    def __init__(self, server_proc: "Process") -> None:
        self.server_proc = server_proc
        self.buffers: list[GrallocBuffer] = []

    def allocate(
        self,
        client_proc: "Process",
        name: str,
        width: int,
        height: int,
        bytes_per_pixel: int = 2,
    ) -> GrallocBuffer:
        """Map a new buffer into both the client and the compositor."""
        nbytes = width * height * bytes_per_pixel
        client_vma = client_proc.mm.mmap(
            nbytes, LABEL_GRALLOC, VMAKind.ASHMEM, PERM_RW, shared=True, tag=name
        )
        server_vma = self.server_proc.mm.mmap(
            nbytes, LABEL_GRALLOC, VMAKind.ASHMEM, PERM_RW, shared=True, tag=name
        )
        buf = GrallocBuffer(name, width, height, bytes_per_pixel, client_vma, server_vma)
        self.buffers.append(buf)
        return buf

    def release(self, buf: GrallocBuffer, client_proc: "Process") -> None:
        """Unmap a buffer from both sides."""
        client_proc.mm.munmap(buf.client_vma)
        self.server_proc.mm.munmap(buf.server_vma)
        self.buffers.remove(buf)
